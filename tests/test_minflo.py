"""Integration tests for the full MINFLOTRANSIT iteration.

Includes the paper's Example 1 / figure 6 scenario: a fanout-heavy
driver that greedy TILOS under-sizes, which the global D-phase view
repairs.
"""

import numpy as np
import pytest

from repro.circuit import CircuitBuilder
from repro.dag import build_sizing_dag
from repro.errors import InfeasibleTimingError, SizingError
from repro.generators import build_circuit, ripple_carry_adder
from repro.sizing import MinfloOptions, minflotransit, tilos_size
from repro.timing import analyze


class TestMinflotransit:
    def test_c17_improves_on_tilos(self, c17_gate_dag):
        dag = c17_gate_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        target = 0.5 * dmin
        seed = tilos_size(dag, target)
        result = minflotransit(dag, target, x0=seed.x)
        assert result.meets_target
        assert result.area <= seed.area * (1 + 1e-12)
        assert result.area_saving_vs_initial >= 0.0
        assert result.converged

    def test_never_violates_timing(self, c17_gate_dag):
        dag = c17_gate_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        for ratio in (0.45, 0.6, 0.8):
            result = minflotransit(dag, ratio * dmin)
            report = analyze(dag, result.x)
            assert report.critical_path_delay <= ratio * dmin * (1 + 1e-9)

    def test_sizes_within_bounds(self, c17_gate_dag):
        dag = c17_gate_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        result = minflotransit(dag, 0.5 * dmin)
        assert np.all(result.x >= dag.lower - 1e-12)
        assert np.all(result.x <= dag.upper + 1e-12)

    def test_infeasible_target_raises(self, c17_gate_dag):
        with pytest.raises(InfeasibleTimingError):
            minflotransit(c17_gate_dag, 1.0)

    def test_bad_start_raises(self, c17_gate_dag):
        dag = c17_gate_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        with pytest.raises(InfeasibleTimingError, match="start"):
            minflotransit(dag, 0.5 * dmin, x0=dag.min_sizes())

    def test_loose_target_converges_to_min_area(self, c17_gate_dag):
        dag = c17_gate_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        result = minflotransit(dag, 1.5 * dmin)
        assert result.area == pytest.approx(dag.area(dag.min_sizes()))

    def test_iteration_records(self, c17_gate_dag):
        dag = c17_gate_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        result = minflotransit(dag, 0.5 * dmin)
        assert result.n_iterations >= 1
        for record in result.iterations:
            assert record.predicted_gain >= -1e-9
            assert record.alpha > 0
        # Only a few tens of iterations (paper section 3).
        assert result.n_iterations <= 60

    def test_options_validation(self):
        with pytest.raises(SizingError):
            MinfloOptions(alpha=0.0)
        with pytest.raises(SizingError):
            MinfloOptions(max_iterations=0)

    @pytest.mark.parametrize("backend", ["ssp", "ssp-legacy", "networkx", "scipy"])
    def test_backends_give_comparable_area(self, c17_gate_dag, backend):
        dag = c17_gate_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        result = minflotransit(
            dag, 0.5 * dmin, MinfloOptions(flow_backend=backend)
        )
        assert result.meets_target
        assert result.area_saving_vs_initial >= 0.0

    def test_balancing_variants(self, c17_gate_dag):
        dag = c17_gate_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        areas = {}
        for method in ("asap", "alap", "dfs"):
            result = minflotransit(
                dag, 0.5 * dmin, MinfloOptions(balancing=method)
            )
            assert result.meets_target
            areas[method] = result.area
        spread = max(areas.values()) / min(areas.values())
        assert spread < 1.05  # configs are displacements of each other

    def test_transistor_mode_end_to_end(self, c17_transistor_dag):
        dag = c17_transistor_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        result = minflotransit(dag, 0.55 * dmin)
        assert result.meets_target
        assert result.area_saving_vs_initial >= 0.0
        assert result.mode == "transistor"

    def test_adder_savings_marginal(self, adder8_dag):
        """Paper: ripple-carry adders gain little over TILOS (single
        dominant critical path)."""
        dag = adder8_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        result = minflotransit(dag, 0.55 * dmin)
        assert result.meets_target
        assert result.area_saving_vs_initial < 0.08


class TestExample1Figure6:
    """The paper's qualitative example: gate A drives both B and C.

    TILOS, ranking by per-gate sensitivity, pumps B and C alternately;
    the D-phase sees that slowing B and C while speeding A (one gate
    instead of two) is the better trade and recovers area.
    """

    @pytest.fixture()
    def fanout_dag(self, tech):
        builder = CircuitBuilder("figure6")
        nets = builder.inputs(["i0", "i1", "i2", "i3"])
        a = builder.gate("NAND2", [nets[0], nets[1]], out="a")
        b = builder.gate("NAND2", [a, nets[2]], out="b")
        c = builder.gate("NAND2", [a, nets[3]], out="c")
        builder.output(b)
        builder.output(c)
        return build_sizing_dag(builder.build(), tech, mode="gate")

    def test_both_paths_critical(self, fanout_dag):
        report = analyze(fanout_dag, fanout_dag.min_sizes())
        slack = report.slack
        ix = {v.label: v.index for v in fanout_dag.vertices}
        assert slack[ix["g0_nand2"]] == pytest.approx(0.0, abs=1e-9)

    def test_minflo_beats_tilos(self, fanout_dag):
        dag = fanout_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        target = 0.55 * dmin
        greedy = tilos_size(dag, target)
        assert greedy.feasible
        result = minflotransit(dag, target, x0=greedy.x)
        assert result.area < greedy.area
        # The shared driver A ends up at least as large relative to its
        # fanouts than greedy left it.
        ix = {v.label: v.index for v in dag.vertices}
        a = ix["g0_nand2"]
        b = ix["g1_nand2"]
        ratio_greedy = greedy.x[a] / greedy.x[b]
        ratio_minflo = result.x[a] / result.x[b]
        assert ratio_minflo >= ratio_greedy * 0.99


class TestMediumCircuits:
    @pytest.mark.parametrize("name,spec", [("c432eq", 0.4), ("c499eq", 0.57)])
    def test_paper_specs_feasible_and_improved(self, tech, name, spec):
        circuit = build_circuit(name)
        dag = build_sizing_dag(circuit, tech, mode="gate")
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        target = spec * dmin
        seed = tilos_size(dag, target)
        assert seed.feasible
        result = minflotransit(dag, target, x0=seed.x)
        assert result.meets_target
        # The paper reports 2-16.5% savings on the ISCAS85 circuits.
        assert result.area_saving_vs_initial > 0.02

    def test_adder16_minimal_savings(self, tech):
        circuit = ripple_carry_adder(16)
        dag = build_sizing_dag(circuit, tech, mode="gate")
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        result = minflotransit(dag, 0.5 * dmin)
        assert result.meets_target
        assert result.area_saving_vs_initial < 0.05
