"""Differential tests for the batched multi-circuit sizing kernels.

Every test here compares the batched execution path against the
single-instance authority it must reproduce *bit for bit*:

* :func:`repro.sizing.batch.solve_smp_batched` vs
  :func:`repro.sizing.kernels.solve_smp_blocked` — same sizes
  (``np.array_equal``, not approx), same sweep counts, same clamped
  sets, across every generator family (rca, multiplier, random logic,
  ISCAS), both sizing modes, ragged batches and batches with
  mid-batch infeasible (clamped) instances;
* ``run_campaign(batch=True)`` vs the per-job loop — same statuses and
  payloads (byte-identical after stripping wall-clock fields), with
  failure isolation: a bad circuit token, a poisoned stacked solve, or
  a per-job timeout fails (or degrades) alone while the rest of the
  batch completes;
* the JSONL run log and the result cache under batched execution —
  batch telemetry on the records, identical cached entries, and a
  replay that is pure cache hits;
* a queue-mode service replica draining with ``batch_drain``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuit.bench_io import save_bench
from repro.dag import build_sizing_dag
from repro.errors import SizingError
from repro.generators import build_circuit, ripple_carry_adder
from repro.generators.multipliers import array_multiplier
from repro.generators.random_logic import random_logic
from repro import runner
from repro.runner import RunLog, load_run, run_campaign
from repro.runner.spec import Job
from repro.sizing.batch import build_batched_smp_plan, solve_smp_batched
from repro.sizing.kernels import get_smp_plan, solve_smp_blocked
from repro.sizing.serialize import canonical_json, comparable_payload
from repro.tech import default_technology


def _instance(circuit, mode: str, spec: float):
    """(model, budgets, lower, upper, plan) for one W-phase instance."""
    from repro.circuit.mapping import is_primitive_circuit, map_to_primitives

    if mode == "transistor" and not is_primitive_circuit(circuit):
        circuit = map_to_primitives(circuit, suffix="")
    dag = build_sizing_dag(circuit, default_technology(), mode=mode)
    load = dag.delays(dag.min_sizes()) - dag.model.intrinsic
    budgets = dag.model.intrinsic + spec * load
    return dag.model, budgets, dag.lower, dag.upper, get_smp_plan(dag)


def _assert_bitwise_parity(instances):
    """Batched solve must equal each per-circuit blocked solve exactly."""
    models = [inst[0] for inst in instances]
    plan = build_batched_smp_plan(models, [inst[4] for inst in instances])
    batched = solve_smp_batched(
        models,
        [inst[1] for inst in instances],
        [inst[2] for inst in instances],
        [inst[3] for inst in instances],
        plan,
    )
    assert len(batched) == len(instances)
    for result, (model, budgets, lower, upper, single_plan) in zip(
        batched, instances
    ):
        solo = solve_smp_blocked(model, budgets, lower, upper, single_plan)
        assert result is not None
        assert np.array_equal(result.x, solo.x)  # bitwise, not approx
        assert result.sweeps == solo.sweeps
        assert result.clamped == solo.clamped


class TestBatchedKernel:
    """solve_smp_batched vs solve_smp_blocked, family by family."""

    @pytest.mark.parametrize("mode", ["gate", "transistor"])
    def test_all_families_bitwise_identical(self, mode):
        circuits = [
            build_circuit("c17"),
            ripple_carry_adder(6, style="nand"),
            array_multiplier(4),
            random_logic(120, n_inputs=12, n_outputs=6, seed=3),
        ]
        instances = [
            _instance(circuit, mode, spec)
            for circuit, spec in zip(circuits, (0.6, 0.7, 0.8, 0.9))
        ]
        _assert_bitwise_parity(instances)

    def test_ragged_batch(self):
        # Very different level depths: rca:64 has >100 levels, c17 a
        # handful — stacked levels must stay per-circuit aligned.
        instances = [
            _instance(ripple_carry_adder(64, style="nand"), "gate", 0.7),
            _instance(build_circuit("c17"), "gate", 0.8),
            _instance(ripple_carry_adder(2, style="nand"), "gate", 0.9),
        ]
        _assert_bitwise_parity(instances)

    def test_mid_batch_clamped_instance(self):
        # A very tight spec clamps (infeasible result); surrounding
        # feasible instances must be unaffected and the clamped one
        # must match its solo run exactly.
        instances = [
            _instance(build_circuit("c17"), "gate", 0.9),
            _instance(ripple_carry_adder(8, style="nand"), "gate", 0.05),
            _instance(ripple_carry_adder(4, style="nand"), "gate", 0.8),
        ]
        clamped_solo = solve_smp_blocked(*instances[1])
        assert clamped_solo.clamped, "spec 0.05 must clamp"
        _assert_bitwise_parity(instances)

    def test_same_circuit_many_specs(self):
        circuit = ripple_carry_adder(10, style="nand")
        instances = [
            _instance(circuit, "gate", spec)
            for spec in (0.55, 0.65, 0.75, 0.85, 0.95)
        ]
        _assert_bitwise_parity(instances)

    def test_bench_file_family(self, tmp_path):
        # Circuits round-tripped through on-disk .bench files (the
        # campaign's path-token family) batch like any other.
        paths = []
        for name, circuit in (
            ("mult", array_multiplier(3)),
            ("rand", random_logic(60, n_inputs=8, n_outputs=4, seed=11)),
        ):
            paths.append(save_bench(circuit, tmp_path / f"{name}.bench"))
        from repro.circuit import load_bench

        instances = [
            _instance(load_bench(path), "gate", spec)
            for path, spec in zip(paths, (0.7, 0.85))
        ]
        _assert_bitwise_parity(instances)

    def test_arity_mismatch_rejected(self):
        model, _, _, _, plan = _instance(build_circuit("c17"), "gate", 0.8)
        with pytest.raises(SizingError, match="one model per plan"):
            build_batched_smp_plan([model, model], [plan])

    def test_empty_batch(self):
        plan = build_batched_smp_plan([], [])
        assert solve_smp_batched([], [], [], [], plan) == []

    def test_nonconverged_slot_is_none_others_solve(self):
        # Transistor-mode relaxation is iterative (gate mode converges
        # in one backward pass), so sweep counts genuinely differ.
        fast = _instance(build_circuit("c17"), "transistor", 0.8)
        slow = _instance(
            ripple_carry_adder(8, style="nand"), "transistor", 0.6
        )
        fast_solo = solve_smp_blocked(*fast)
        slow_solo = solve_smp_blocked(*slow)
        assert fast_solo.sweeps < slow_solo.sweeps, "need separable sweeps"
        cap = slow_solo.sweeps - 1  # enough for c17, not for the adder
        models = [fast[0], slow[0]]
        plan = build_batched_smp_plan(models, [fast[4], slow[4]])
        results = solve_smp_batched(
            models,
            [fast[1], slow[1]],
            [fast[2], slow[2]],
            [fast[3], slow[3]],
            plan,
            max_sweeps=cap,
        )
        assert results[0] is not None
        assert results[0].sweeps == fast_solo.sweeps
        assert np.array_equal(results[0].x, fast_solo.x)
        assert results[1] is None


WPHASE_JOBS = [
    Job(circuit="c17", delay_spec=0.6, kind="wphase"),
    Job(circuit="c17", delay_spec=0.9, kind="wphase"),
    Job(circuit="rca:6", delay_spec=0.05, kind="wphase"),  # infeasible
    Job(circuit="rca:6", delay_spec=0.8, kind="wphase"),
    Job(circuit="rca:12", delay_spec=0.7, kind="wphase"),
]


def _payload_parity(a, b):
    assert a.status == b.status, (a.job, a.status, b.status)
    assert canonical_json(comparable_payload(a.payload)) == canonical_json(
        comparable_payload(b.payload)
    ), a.job
    if a.payload is not None:
        assert a.payload["sizes"] == b.payload["sizes"]
        assert a.payload["sweeps"] == b.payload["sweeps"]
        assert a.payload["clamped"] == b.payload["clamped"]


class TestCampaignBatch:
    """run_campaign(batch=True) vs the per-job loop."""

    def test_loop_and_batch_agree(self):
        loop = run_campaign(WPHASE_JOBS, cache=None)
        batched = run_campaign(WPHASE_JOBS, cache=None, batch=True)
        assert [o.status for o in loop.outcomes] == [
            "ok", "ok", "infeasible", "ok", "ok",
        ]
        for a, b in zip(loop.outcomes, batched.outcomes):
            _payload_parity(a, b)
            assert b.batch_size == len(WPHASE_JOBS)
            assert b.batched_seconds > 0.0
            assert a.batch_size == 0

    def test_sizing_jobs_are_never_batched(self):
        jobs = [Job(circuit="c17", delay_spec=0.5)]
        batched = run_campaign(jobs, cache=None, batch=True)
        assert batched.outcomes[0].status == "ok"
        assert batched.outcomes[0].batch_size == 0

    def test_mixed_kinds_split_into_group_and_rest(self):
        jobs = [
            Job(circuit="c17", delay_spec=0.8, kind="wphase"),
            Job(circuit="c17", delay_spec=0.5),
            Job(circuit="rca:4", delay_spec=0.8, kind="wphase"),
        ]
        batched = run_campaign(jobs, cache=None, batch=True)
        by_index = {o.index: o for o in batched.outcomes}
        assert by_index[0].batch_size == 2
        assert by_index[1].batch_size == 0
        assert by_index[2].batch_size == 2
        assert [by_index[i].status for i in range(3)] == ["ok", "ok", "ok"]

    def test_modes_group_separately(self):
        jobs = [
            Job(circuit="c17", delay_spec=0.8, kind="wphase", mode="gate"),
            Job(circuit="c17", delay_spec=0.8, kind="wphase",
                mode="transistor"),
        ]
        loop = run_campaign(jobs, cache=None)
        batched = run_campaign(jobs, cache=None, batch=True)
        for a, b in zip(loop.outcomes, batched.outcomes):
            _payload_parity(a, b)
            assert b.batch_size == 1


class TestFailureIsolation:
    """One bad job must not take its batch down."""

    def test_bad_token_fails_alone(self):
        jobs = [
            Job(circuit="c17", delay_spec=0.8, kind="wphase"),
            Job(circuit="no-such-circuit", delay_spec=0.8, kind="wphase"),
            Job(circuit="rca:4", delay_spec=0.8, kind="wphase"),
        ]
        loop = run_campaign(jobs, cache=None)
        batched = run_campaign(jobs, cache=None, batch=True)
        statuses = [o.status for o in batched.outcomes]
        assert statuses == ["ok", "failed", "ok"]
        by_index = {o.index: o for o in batched.outcomes}
        assert "no-such-circuit" in by_index[1].error
        assert by_index[1].batch_size == 0  # failed before the solve
        for a, b in zip(loop.outcomes, batched.outcomes):
            _payload_parity(a, b)

    def test_poisoned_stacked_solve_degrades_to_per_job(self, monkeypatch):
        import repro.sizing.batch as batch_module

        def boom(*args, **kwargs):
            raise RuntimeError("stacked solve poisoned by test")

        monkeypatch.setattr(batch_module, "solve_smp_batched", boom)
        jobs = WPHASE_JOBS[:3]
        loop = run_campaign(jobs, cache=None)
        batched = run_campaign(jobs, cache=None, batch=True)
        for a, b in zip(loop.outcomes, batched.outcomes):
            _payload_parity(a, b)
            # Fallback outcomes are reported as unbatched.
            assert b.batch_size == 0
            assert b.batched_seconds == 0.0

    def test_timeout_hits_the_slow_job_alone(self, monkeypatch):
        import repro.runner.executor as executor

        real_context = executor._wphase_context

        def slow_for_rca12(job):
            if job.circuit == "rca:12":
                time.sleep(5.0)
            return real_context(job)

        monkeypatch.setattr(executor, "_wphase_context", slow_for_rca12)
        jobs = [
            Job(circuit="c17", delay_spec=0.8, kind="wphase"),
            Job(circuit="rca:12", delay_spec=0.8, kind="wphase"),
            Job(circuit="rca:4", delay_spec=0.8, kind="wphase"),
        ]
        batched = run_campaign(jobs, cache=None, batch=True, timeout=0.3)
        by_index = {o.index: o for o in batched.outcomes}
        assert by_index[1].status == "timeout"
        assert "budget" in by_index[1].error
        assert by_index[0].status == "ok"
        assert by_index[2].status == "ok"

    def test_nonconverged_instance_falls_back_alone(self, monkeypatch):
        # Force one slot to None: the batched solver reports the rest,
        # and the straggler replays through the per-job path (where it
        # raises the real non-convergence diagnostic).
        import repro.sizing.batch as batch_module

        real_solve = batch_module.solve_smp_batched

        def drop_last(models, budgets, lowers, uppers, plan, **kwargs):
            results = real_solve(
                models, budgets, lowers, uppers, plan, **kwargs
            )
            results[-1] = None
            return results

        monkeypatch.setattr(batch_module, "solve_smp_batched", drop_last)
        jobs = WPHASE_JOBS[:2] + [
            Job(circuit="rca:4", delay_spec=0.8, kind="wphase"),
        ]
        loop = run_campaign(jobs, cache=None)
        batched = run_campaign(jobs, cache=None, batch=True)
        for a, b in zip(loop.outcomes, batched.outcomes):
            _payload_parity(a, b)
        by_index = {o.index: o for o in batched.outcomes}
        assert by_index[0].batch_size == 3
        assert by_index[2].batch_size == 0  # served by the fallback


class TestBatchRunLogAndCache:
    """JSONL records and cache entries under batched execution."""

    def test_records_carry_batch_telemetry_and_replay_is_cached(
        self, tmp_path
    ):
        from repro.runner.cache import ResultCache
        from repro.runner.spec import CampaignSpec

        spec = CampaignSpec(
            name="batch-log",
            circuits=("c17", "rca:4"),
            delay_specs=(0.7, 0.9),
            kind="wphase",
        )
        cache = ResultCache(tmp_path / "cache")
        first = runner.run(
            spec, cache=cache, run_dir=tmp_path / "run", batch=True
        )
        assert all(o.status == "ok" for o in first.outcomes)
        assert all(o.batch_size == 4 for o in first.outcomes)

        state = load_run(tmp_path / "run")
        assert len(state.records) == 4
        for record in state.records.values():
            assert record["batch_size"] == 4
            assert record["batched_seconds"] > 0.0
            assert record["summary"]["feasible"] is True
            assert record["summary"]["sweeps"] >= 1

        # Replay: every job is a cache hit, reported unbatched, with
        # the byte-identical payload the batched run stored.
        second = runner.run(
            spec, cache=cache, run_dir=tmp_path / "run2", batch=True
        )
        for a, b in zip(first.outcomes, second.outcomes):
            assert b.cached and b.batch_size == 0
            assert canonical_json(a.payload) == canonical_json(b.payload)
        replay = load_run(tmp_path / "run2")
        for record in replay.records.values():
            assert record["cached"] is True
            assert "batch_size" not in record

    def test_batched_and_per_job_cache_entries_are_identical(self, tmp_path):
        from repro.runner.cache import ResultCache

        jobs = [Job(circuit="c17", delay_spec=0.8, kind="wphase"),
                Job(circuit="rca:4", delay_spec=0.8, kind="wphase")]
        cache_a = ResultCache(tmp_path / "a")
        cache_b = ResultCache(tmp_path / "b")
        run_campaign(jobs, cache=cache_a)
        run_campaign(jobs, cache=cache_b, batch=True)
        keys_a, keys_b = sorted(cache_a.scan()), sorted(cache_b.scan())
        assert keys_a == keys_b and len(keys_a) == 2
        for key in keys_a:
            assert canonical_json(
                comparable_payload(cache_a.get(key))
            ) == canonical_json(comparable_payload(cache_b.get(key)))

    def test_report_marks_batched_outcomes(self):
        from repro.runner import format_campaign
        from repro.runner.report import campaign_to_dict

        jobs = [Job(circuit="c17", delay_spec=0.8, kind="wphase"),
                Job(circuit="rca:4", delay_spec=0.8, kind="wphase")]
        result = run_campaign(jobs, cache=None, batch=True)
        text = format_campaign(result)
        assert "batch:2" in text
        digest = campaign_to_dict(result)
        assert [j["batch_size"] for j in digest["jobs"]] == [2, 2]

    def test_runlog_without_batch_omits_telemetry(self, tmp_path):
        log = RunLog(tmp_path)
        outcome = run_campaign(
            [Job(circuit="c17", delay_spec=0.8, kind="wphase")], cache=None
        ).outcomes[0]
        log.record(outcome)
        state_line = (tmp_path / "campaign.jsonl").read_text().strip()
        assert '"batch_size"' not in state_line


class TestServiceBatchDrain:
    """A queue-mode replica draining with batch_drain fuses wphase jobs."""

    def test_batched_drain_matches_direct_execution(self, tmp_path):
        from repro.runner.executor import execute_job
        from repro.service.app import SizingService

        service = SizingService(
            jobs=1,
            cache=tmp_path / "cache",
            run_dir=tmp_path / "run",
            queue=tmp_path / "q.db",
            batch_drain=8,
        )
        try:
            tickets = [
                service.size_async({
                    "circuit": "c17",
                    "delay_spec": spec,
                    "kind": "wphase",
                    "async": True,
                })
                for spec in (0.6, 0.8, 1.0)
            ]
            deadline = time.monotonic() + 60.0
            finished = []
            for ticket in tickets:
                record = ticket
                while not record.done and time.monotonic() < deadline:
                    record = service.store.wait(
                        record.id, record.status, 1.0
                    )
                finished.append(record)
            assert [r.status for r in finished] == ["ok", "ok", "ok"]
            for record in finished:
                _status, direct = execute_job(record.job)
                assert canonical_json(
                    comparable_payload(record.payload)
                ) == canonical_json(comparable_payload(direct))
            stats = service.stats()
            assert stats["executor"]["batch_drain"] == 8
            assert stats["batched_jobs"] >= 2
        finally:
            service.close()

    def test_service_rejects_phases_kind(self, tmp_path):
        from repro.errors import ServiceError
        from repro.service.app import build_job

        with pytest.raises(ServiceError, match="'kind'"):
            build_job({"circuit": "c17", "kind": "phases"}, tmp_path)
        job = build_job({"circuit": "c17", "kind": "wphase"}, tmp_path)
        assert job.kind == "wphase"
