"""Tests for the simultaneous wire-sizing extension (paper §2.1)."""

import pytest

from repro.dag import build_sizing_dag
from repro.errors import NetlistError
from repro.generators import ripple_carry_adder
from repro.sizing import minflotransit, tilos_size
from repro.timing import analyze


@pytest.fixture(scope="module")
def wired_dag(c17, tech):
    return build_sizing_dag(c17, tech, mode="gate", size_wires=True)


class TestWireDagStructure:
    def test_wire_vertices_added(self, c17, wired_dag):
        wires = [v for v in wired_dag.vertices if v.kind == "wire"]
        driven_nets = [
            g.output for g in c17.gates if c17.fanout_count(g.output) > 0
        ]
        assert len(wires) == len(driven_nets)
        assert wired_dag.n == c17.n_gates + len(driven_nets)

    def test_edges_route_through_wires(self, wired_dag):
        kinds = {v.index: v.kind for v in wired_dag.vertices}
        for u, v in wired_dag.edges:
            # gate -> wire or wire -> gate, never gate -> gate.
            assert {kinds[u], kinds[v]} == {"gate", "wire"}

    def test_po_leaves_are_wires(self, wired_dag):
        for leaf in wired_dag.po_vertices:
            assert wired_dag.vertices[leaf].kind == "wire"

    def test_wire_bounds(self, wired_dag, tech):
        for v in wired_dag.vertices:
            if v.kind == "wire":
                assert wired_dag.lower[v.index] == tech.wire_min_size
                assert wired_dag.upper[v.index] == tech.wire_max_size

    def test_monotonic_decomposition_valid(self, wired_dag):
        assert (wired_dag.model.a_matrix.data >= 0).all()
        assert (wired_dag.model.b >= 0).all()

    def test_wire_delay_decreasing_in_width(self, wired_dag):
        x = wired_dag.min_sizes()
        base = wired_dag.delays(x)
        wire = next(
            v.index for v in wired_dag.vertices if v.kind == "wire"
        )
        grown = x.copy()
        grown[wire] *= 4
        # The wire's own delay falls; its driver's delay rises.
        assert wired_dag.delays(grown)[wire] < base[wire]
        driver = next(
            u for u, v in wired_dag.edges if v == wire
        )
        assert wired_dag.delays(grown)[driver] > base[driver]

    def test_transistor_mode_rejects_wires(self, c17, tech):
        with pytest.raises(NetlistError, match="wire sizing"):
            build_sizing_dag(c17, tech, mode="transistor", size_wires=True)


class TestWireSizingOptimization:
    def test_minflo_runs_with_wires(self, wired_dag):
        d_min = analyze(wired_dag, wired_dag.min_sizes()).critical_path_delay
        result = minflotransit(wired_dag, 0.6 * d_min)
        assert result.meets_target
        assert result.area_saving_vs_initial >= 0.0

    def test_wire_sizing_lowers_delay_floor(self, tech):
        """With sizable wires the same circuit reaches lower delay: the
        tool can widen the wires on the critical path."""
        circuit = ripple_carry_adder(4, style="nand")
        plain = build_sizing_dag(circuit, tech, mode="gate")
        wired = build_sizing_dag(circuit, tech, mode="gate", size_wires=True)
        d_plain = analyze(plain, plain.min_sizes()).critical_path_delay
        d_wired = analyze(wired, wired.min_sizes()).critical_path_delay
        # At min sizes the wired model approximates the plain one.
        assert d_wired == pytest.approx(d_plain, rel=0.2)
        target = 0.42 * d_plain
        plain_result = tilos_size(plain, target)
        wired_result = tilos_size(wired, 0.42 * d_wired)
        # Wire widening gives TILOS strictly more room.
        if plain_result.feasible:
            assert wired_result.feasible

    def test_wires_get_sized_on_critical_path(self, wired_dag):
        d_min = analyze(wired_dag, wired_dag.min_sizes()).critical_path_delay
        result = minflotransit(wired_dag, 0.55 * d_min)
        wires = [v.index for v in wired_dag.vertices if v.kind == "wire"]
        assert max(result.x[wires]) > 1.0 + 1e-9
