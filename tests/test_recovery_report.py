"""Tests for slack recovery and the timing report formatters."""

import numpy as np
import pytest

from repro.errors import SizingError
from repro.sizing import minflotransit, tilos_size
from repro.sizing.recovery import greedy_downsize
from repro.timing import GraphTimer, analyze
from repro.timing.report import format_critical_path, format_slack_histogram


class TestRecovery:
    def test_recovers_area_from_oversized_start(self, c17_gate_dag):
        dag = c17_gate_dag
        d_min = analyze(dag, dag.min_sizes()).critical_path_delay
        target = 0.6 * d_min
        # Deliberately oversized start: everything at 8x.
        x0 = dag.min_sizes() * 8
        start_cp = analyze(dag, x0).critical_path_delay
        assert start_cp <= target
        result = greedy_downsize(dag, x0, target)
        assert result.area < dag.area(x0)
        assert result.critical_path_delay <= target * (1 + 1e-9)
        assert result.moves > 0

    def test_keeps_timing(self, adder8_dag):
        dag = adder8_dag
        d_min = analyze(dag, dag.min_sizes()).critical_path_delay
        target = 0.55 * d_min
        seed = tilos_size(dag, target)
        assert seed.feasible
        result = greedy_downsize(dag, seed.x, target)
        assert result.critical_path_delay <= target * (1 + 1e-9)
        assert result.area <= seed.area + 1e-9

    def test_minflo_beats_recovery(self, c17_gate_dag):
        """Recovery only harvests local slack; the D-phase moves budget
        globally, so MINFLOTRANSIT should do at least as well."""
        dag = c17_gate_dag
        d_min = analyze(dag, dag.min_sizes()).critical_path_delay
        target = 0.5 * d_min
        seed = tilos_size(dag, target)
        recovered = greedy_downsize(dag, seed.x, target)
        refined = minflotransit(dag, target, x0=seed.x)
        assert refined.area <= recovered.area * 1.01

    def test_infeasible_start_rejected(self, c17_gate_dag):
        dag = c17_gate_dag
        with pytest.raises(SizingError, match="feasible"):
            greedy_downsize(dag, dag.min_sizes(), 1.0)

    def test_shrink_validation(self, c17_gate_dag):
        dag = c17_gate_dag
        with pytest.raises(SizingError, match="shrink"):
            greedy_downsize(dag, dag.min_sizes() * 2, 1e12, shrink=0.9)


class TestTimingReports:
    def test_critical_path_table(self, c17_gate_dag):
        x = c17_gate_dag.min_sizes()
        report = analyze(c17_gate_dag, x)
        text = format_critical_path(report, x)
        assert "critical path of c17" in text
        assert "arrival ps" in text
        # Last arrival equals the critical path delay.
        last_arrival = text.strip().splitlines()[-1].split()
        assert float(last_arrival[-2]) == pytest.approx(
            report.critical_path_delay, abs=0.1
        )

    def test_histogram(self, adder8_dag):
        report = analyze(adder8_dag, adder8_dag.min_sizes())
        text = format_slack_histogram(report)
        assert "slack histogram" in text
        assert "#" in text

    def test_histogram_degenerate(self, c17_gate_dag):
        timer = GraphTimer(c17_gate_dag)
        delay = np.ones(c17_gate_dag.n)
        report = timer.analyze(delay)
        text = format_slack_histogram(report)
        assert "slack" in text
