"""Tests for the simple-monotonic-functional delay framework."""

import numpy as np
import pytest

from repro.delay import (
    ElmoreSizeLaw,
    PowerSizeLaw,
    VertexDelayModel,
    check_decomposition,
)
from repro.errors import DelayModelError


def _tiny_model(law=None):
    rows = [[(1, 2.0)], [(2, 1.0)], []]
    b = np.array([1.0, 0.5, 4.0])
    intrinsic = np.array([0.1, 0.2, 0.3])
    return VertexDelayModel.from_rows(rows, b, intrinsic, law=law)


class TestValidation:
    def test_negative_coefficient_rejected(self):
        with pytest.raises(DelayModelError, match="monotonicity"):
            check_decomposition([[(1, -1.0)], []], [0, 0], [0, 0], 2)

    def test_self_coefficient_rejected(self):
        with pytest.raises(DelayModelError, match="intrinsic"):
            check_decomposition([[(0, 1.0)], []], [0, 0], [0, 0], 2)

    def test_out_of_range_index(self):
        with pytest.raises(DelayModelError, match="range"):
            check_decomposition([[(5, 1.0)], []], [0, 0], [0, 0], 2)

    def test_negative_b_rejected(self):
        with pytest.raises(DelayModelError):
            check_decomposition([[], []], [-1, 0], [0, 0], 2)

    def test_shape_mismatch(self):
        with pytest.raises(DelayModelError, match="disagree"):
            check_decomposition([[]], [0, 0], [0], 2)


class TestEvaluation:
    def test_elmore_delays(self):
        model = _tiny_model()
        x = np.array([1.0, 2.0, 4.0])
        # delay0 = 0.1 + (2*x1 + 1)/x0 = 0.1 + 5
        # delay1 = 0.2 + (1*x2 + 0.5)/x1 = 0.2 + 2.25
        # delay2 = 0.3 + 4/x2 = 0.3 + 1
        assert model.delays(x) == pytest.approx([5.1, 2.45, 1.3])

    def test_duplicate_coefficients_merge(self):
        model = VertexDelayModel.from_rows(
            [[(1, 1.0), (1, 2.0)], []], [0.0, 1.0], [0.0, 0.0]
        )
        x = np.array([1.0, 3.0])
        assert model.delays(x)[0] == pytest.approx(9.0)

    def test_rejects_nonpositive_sizes(self):
        model = _tiny_model()
        with pytest.raises(DelayModelError):
            model.delays(np.array([1.0, 0.0, 1.0]))

    def test_load_delays(self):
        model = _tiny_model()
        x = np.ones(3)
        assert model.load_delays(x) == pytest.approx(
            model.delays(x) - model.intrinsic
        )

    def test_dependencies(self):
        model = _tiny_model()
        assert model.dependencies(0) == [(1, 2.0)]
        assert model.dependencies(2) == []


class TestSizeLaws:
    def test_elmore_inverse(self):
        law = ElmoreSizeLaw()
        for x in (0.5, 1.0, 7.3):
            assert law.g_inverse(law.g(x)) == pytest.approx(x)

    def test_power_law_inverse(self):
        law = PowerSizeLaw(exponent=0.7)
        for x in (0.5, 1.0, 7.3):
            assert law.g_inverse(law.g(x)) == pytest.approx(x)

    def test_power_law_validation(self):
        with pytest.raises(DelayModelError):
            PowerSizeLaw(exponent=0.0)

    def test_power_law_monotone_decreasing(self):
        law = PowerSizeLaw(exponent=0.85)
        xs = np.linspace(0.5, 10, 30)
        gs = [law.g(x) for x in xs]
        assert all(a > b for a, b in zip(gs, gs[1:]))

    def test_with_law_changes_delays(self):
        elmore = _tiny_model()
        power = elmore.with_law(PowerSizeLaw(exponent=0.5))
        x = np.array([4.0, 4.0, 4.0])
        # 1/x vs 1/sqrt(x): power law decays slower -> larger delays.
        assert np.all(power.delays(x) >= elmore.delays(x))

    def test_general_law_end_to_end(self, c17, tech):
        """The full pipeline runs under a non-Elmore law (paper claim:
        any simple monotonic decomposition works)."""
        from repro.dag import build_sizing_dag
        from repro.delay import PowerSizeLaw
        from repro.sizing import minflotransit
        from repro.timing import analyze

        dag = build_sizing_dag(
            c17, tech, mode="gate", law=PowerSizeLaw(exponent=0.8)
        )
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        result = minflotransit(dag, 0.6 * dmin)
        assert result.meets_target
        assert result.area_saving_vs_initial >= 0.0
