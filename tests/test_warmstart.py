"""Warm-started flow solves: exactness, parity with cold, telemetry.

The warm-start contract is strict: a warm solve of any instance must
reach exactly the same optimum as a cold solve — the basis only changes
the work done.  These tests drive the ``ssp`` engine through drifting
LP sequences (random and real D-phase) and check objectives, duals
feasibility, and the fallback paths.
"""

import numpy as np
import pytest

from repro.balancing import balance
from repro.errors import FlowError
from repro.flow.arrayssp import (
    ArraySspEngine,
    WarmStartBasis,
    basis_from_solution,
)
from repro.flow.duality import DifferenceConstraintLP, solve_difference_lp
from repro.flow.network import FlowProblem
from repro.flow.registry import get_backend
from repro.flow.verify import check_flow_feasible, check_flow_optimal
from repro.sizing import TilosOptions, tilos_size
from repro.sizing.dphase import d_phase
from repro.sizing.wphase import w_phase
from repro.timing import GraphTimer, analyze


def random_difference_lp(rng, n, arcs, costs, weights):
    lp = DifferenceConstraintLP(
        n_nodes=n, weights=weights.copy(), pinned=frozenset({0})
    )
    for (u, v), c in zip(arcs, costs):
        lp.add(u, v, float(c))
    return lp


class TestWarmStartParity:
    def test_drifting_lp_sequence_matches_cold(self):
        """Warm and cold objectives agree exactly along a drift chain."""
        rng = np.random.default_rng(7)
        n = 30
        arcs = sorted(set(
            (int(u), int(v))
            for u, v in rng.integers(0, n, size=(n * 3, 2))
            if u != v
        ))
        base_costs = rng.integers(0, 50, size=len(arcs)).astype(float)
        base_w = rng.integers(-20, 20, size=n).astype(float)
        warm = None
        warm_used = 0
        for _ in range(25):
            costs = np.maximum(
                base_costs + rng.integers(-3, 4, size=len(arcs)), -5
            )
            weights = base_w + rng.integers(-2, 3, size=n)
            try:
                cold = solve_difference_lp(
                    random_difference_lp(rng, n, arcs, costs, weights),
                    backend="ssp",
                )
            except FlowError:
                # The drift made this instance genuinely infeasible or
                # unbounded; it cannot anchor a warm/cold comparison.
                warm = None
                continue
            sol = solve_difference_lp(
                random_difference_lp(rng, n, arcs, costs, weights),
                backend="ssp",
                warm_start=warm,
            )
            assert sol.objective == cold.objective
            warm_used += sol.stats.warm_solves
            warm = sol.warm_basis
        assert warm_used > 0, "no warm start ever engaged"

    def test_dphase_sequence_matches_cold(self, adder8_dag):
        """Real W/D replay: warm duals stay feasible, objectives equal,
        and warm solves route less supply than cold ones."""
        dag = adder8_dag
        timer = GraphTimer(dag)
        d_min = analyze(dag, dag.min_sizes()).critical_path_delay
        target = 0.55 * d_min
        seed = tilos_size(dag, target, TilosOptions(), timer=timer)
        assert seed.feasible
        x = seed.x
        basis = None
        compared = 0
        for _ in range(4):
            delays = dag.model.delays(x)
            config = balance(dag, delays, horizon=target, timer=timer)
            load = delays - dag.model.intrinsic
            cold = d_phase(
                dag, x, config, -0.25 * load, 0.25 * load, backend="ssp"
            )
            if basis is not None:
                warm = d_phase(
                    dag, x, config, -0.25 * load, 0.25 * load,
                    backend="ssp", warm_start=basis,
                )
                assert warm.predicted_gain == pytest.approx(
                    cold.predicted_gain, abs=1e-9 * (1 + cold.predicted_gain)
                )
                if warm.stats.warm_solves:
                    assert (
                        warm.stats.supply_routed <= cold.stats.supply_routed
                    )
                compared += 1
            basis = cold.warm_basis
            wres = w_phase(dag, delays + cold.delta_d)
            report = timer.analyze(dag.model.delays(wres.x), horizon=target)
            if report.critical_path_delay <= target * (1 + 1e-9):
                x = wres.x
        assert compared >= 3

    def test_warm_solution_certified_optimal(self):
        """The warm solve's flow passes the optimality certificate."""
        problem = FlowProblem(n_nodes=4)
        problem.add_arc(0, 1, cost=2.0)
        problem.add_arc(0, 2, cost=1.0)
        problem.add_arc(1, 3, cost=1.0)
        problem.add_arc(2, 3, cost=3.0)
        problem.add_supply(0, 5.0)
        problem.add_supply(3, -5.0)
        cold = ArraySspEngine(problem).solve()
        basis = basis_from_solution(cold)

        shifted = FlowProblem(n_nodes=4)
        shifted.add_arc(0, 1, cost=2.0)
        shifted.add_arc(0, 2, cost=2.0)   # drifted up
        shifted.add_arc(1, 3, cost=1.0)
        shifted.add_arc(2, 3, cost=2.0)   # drifted down
        shifted.add_supply(0, 7.0)        # supply drift
        shifted.add_supply(3, -7.0)
        warm = ArraySspEngine(shifted).solve(warm_start=basis)
        cold2 = ArraySspEngine(shifted).solve()
        check_flow_feasible(warm)
        check_flow_optimal(warm)
        assert warm.total_cost == pytest.approx(cold2.total_cost)


class TestWarmStartRobustness:
    def test_mismatched_basis_is_ignored(self):
        problem = FlowProblem(n_nodes=3)
        problem.add_arc(0, 1, cost=1.0)
        problem.add_arc(1, 2, cost=1.0)
        problem.add_supply(0, 2.0)
        problem.add_supply(2, -2.0)
        bogus = WarmStartBasis(
            potentials=np.zeros(7),
            flow=np.zeros(5),
            arc_costs=np.zeros(5),
        )
        solution = ArraySspEngine(problem).solve(warm_start=bogus)
        assert solution.stats.warm_solves == 0
        assert solution.total_cost == pytest.approx(4.0)

    def test_cold_solve_stats_unchanged_by_capability(self):
        """Cold solves must not report warm telemetry."""
        problem = FlowProblem(n_nodes=2)
        problem.add_arc(0, 1, cost=3.0)
        problem.add_supply(0, 1.0)
        problem.add_supply(1, -1.0)
        solution = ArraySspEngine(problem).solve()
        assert solution.stats.warm_solves == 0
        assert solution.stats.warm_flow_reused == 0.0
        assert solution.stats.supply_routed == pytest.approx(1.0)

    def test_registry_declares_warm_capability(self):
        assert get_backend("ssp").capabilities.supports_warm_start
        for name in ("ssp-legacy", "networkx", "scipy"):
            assert not get_backend(name).capabilities.supports_warm_start

    def test_warm_start_not_forwarded_to_cold_backends(self):
        """A warm basis reaching a non-supporting backend is dropped by
        the registry, not passed through (which would TypeError)."""
        rng = np.random.default_rng(7)
        n = 8
        weights = rng.integers(-5, 5, size=n).astype(float)
        lp = DifferenceConstraintLP(
            n_nodes=n, weights=weights, pinned=frozenset({0})
        )
        for u in range(n - 1):
            lp.add(u, u + 1, 3.0)
            lp.add(u + 1, u, 3.0)
        bogus = WarmStartBasis(
            potentials=np.zeros(1), flow=np.zeros(1), arc_costs=np.zeros(1)
        )
        cold = solve_difference_lp(lp, backend="ssp-legacy")
        warm = solve_difference_lp(
            lp, backend="ssp-legacy", warm_start=bogus
        )
        assert warm.objective == cold.objective
