"""Shared fixtures for the test suite.

Markers (registered in ``pyproject.toml``):

* ``slow`` — end-to-end smokes that spawn real subprocesses, drive
  multi-replica fleets, or run full campaign sweeps (example scripts,
  ``serve`` processes, parallel warm-corpus parity).  The default
  tier-1 invocation (``PYTHONPATH=src python -m pytest -x -q``) runs
  them; ``-m "not slow"`` is the fast feedback lane and what the CI
  bench-smoke lanes use while the heavyweight jobs cover the rest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import CircuitBuilder
from repro.dag import build_sizing_dag
from repro.generators import build_circuit, ripple_carry_adder
from repro.tech import default_technology


@pytest.fixture(scope="session")
def tech():
    return default_technology()


@pytest.fixture(scope="session")
def c17():
    return build_circuit("c17")


@pytest.fixture(scope="session")
def c17_gate_dag(c17, tech):
    return build_sizing_dag(c17, tech, mode="gate")


@pytest.fixture(scope="session")
def c17_transistor_dag(c17, tech):
    return build_sizing_dag(c17, tech, mode="transistor")


@pytest.fixture(scope="session")
def adder8(tech):
    return ripple_carry_adder(8, style="nand")


@pytest.fixture(scope="session")
def adder8_dag(adder8, tech):
    return build_sizing_dag(adder8, tech, mode="gate")


@pytest.fixture()
def fresh_builder():
    return CircuitBuilder("test")


def random_sizes(dag, rng: np.random.Generator) -> np.ndarray:
    """Random feasible size vector for a DAG."""
    return rng.uniform(dag.lower, np.minimum(dag.upper, dag.lower * 8))
