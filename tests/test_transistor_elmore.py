"""Hand-derived Elmore checks for complex-gate transistor DAGs.

The NAND3 case (paper equation (3)) lives in test_dag.py; these cover
the series-parallel combinations (AOI21, OAI21) where internal nodes are
shared between branches, and cross-gate loading.
"""

import numpy as np
import pytest

from repro.circuit import CircuitBuilder
from repro.dag import build_sizing_dag
from repro.timing import analyze


def _single_gate_dag(tech, cell, n_inputs):
    builder = CircuitBuilder("one")
    nets = builder.inputs([f"i{k}" for k in range(n_inputs)])
    out = builder.gate(cell, nets)
    builder.output(out)
    return build_sizing_dag(builder.build(), tech, mode="transistor")


class TestOai21Pulldown:
    """OAI21 pulldown = series(parallel(a, b), c).

    Node structure: out --[a | b]-- n1 --[c]-- gnd.  Charge at n1 (both
    sources of a,b plus c's drain) discharges through c only.
    """

    def test_delays(self, tech):
        dag = _single_gate_dag(tech, "OAI21", 3)
        x = np.full(dag.n, 2.0)
        delays = dag.delays(x)
        by_label = {v.label: v.index for v in dag.vertices}
        g = dag.vertices[0].gate

        A = tech.r_nmos
        out_cap = (
            2 * tech.c_drain_n * 2.0       # drains of a, b at out
            + 2 * tech.c_drain_p * 2.0     # pullup output devices: c_p
            + tech.c_load + tech.c_wire    # external
        )
        # Pullup = dual = parallel(series(a,b)?, ...): dual of
        # series(parallel(a,b), c) = parallel(series(a,b), c):
        # output devices = a (top of series branch) + c -> 2 drains.
        n1_cap = (
            2 * tech.c_source_n * 2.0      # sources of a, b
            + tech.c_drain_n * 2.0         # drain of c
            + tech.c_internal
        )
        want_a = (A / 2.0) * out_cap
        want_c = (A / 2.0) * (out_cap + n1_cap)
        assert delays[by_label[f"{g}/N:in0"]] == pytest.approx(want_a)
        assert delays[by_label[f"{g}/N:in1"]] == pytest.approx(want_a)
        assert delays[by_label[f"{g}/N:in2"]] == pytest.approx(want_c)

    def test_structure(self, tech):
        dag = _single_gate_dag(tech, "OAI21", 3)
        nmos = [v.index for v in dag.vertices if v.kind == "nmos"]
        intra = [e for e in dag.edges if e[0] in nmos and e[1] in nmos]
        # a->c and b->c: two chain edges in the pulldown.
        assert len(intra) == 2


class TestAoi21CrossLoading:
    def test_driven_gate_loads_driver(self, tech):
        """The driver's delay grows when the driven AOI21's devices on
        the loaded pin grow (gate-cap coupling across gates)."""
        builder = CircuitBuilder("two")
        i0, i1, i2, i3 = builder.inputs(["i0", "i1", "i2", "i3"])
        mid = builder.gate("INV", [i0])
        out = builder.gate("AOI21", [mid, i2, i3])
        builder.output(out)
        dag = build_sizing_dag(builder.build(), tech, mode="transistor")
        x = dag.min_sizes().astype(float)
        base = dag.delays(x)
        driven = [
            v.index
            for v in dag.vertices
            if v.label.endswith(":in0") and "aoi21" in v.gate
        ]
        assert driven, "expected AOI21 devices on pin in0"
        grown = x.copy()
        grown[driven] = 4.0
        slower = dag.delays(grown)
        inv_devices = [
            v.index for v in dag.vertices if "inv" in v.gate
        ]
        for device in inv_devices:
            assert slower[device] > base[device]

    def test_worst_path_touches_deepest_stack(self, tech):
        dag = _single_gate_dag(tech, "AOI21", 3)
        report = analyze(dag, dag.min_sizes())
        path = report.critical_path()
        # AOI21 pullup is series(parallel(a,b), c): the 2-stack PMOS
        # dominates (PMOS resistance is ~2.2x NMOS).
        kinds = {dag.vertices[v].kind for v in path}
        assert kinds == {"pmos"}
        assert len(path) == 2


class TestGateVsTransistorConsistency:
    def test_same_order_of_magnitude(self, c17, tech):
        """Gate-mode and transistor-mode Dmin agree within 25% on c17
        (same Elmore physics, different granularity of worst-casing)."""
        gate_dag = build_sizing_dag(c17, tech, mode="gate")
        tran_dag = build_sizing_dag(c17, tech, mode="transistor")
        d_gate = analyze(gate_dag, gate_dag.min_sizes()).critical_path_delay
        d_tran = analyze(tran_dag, tran_dag.min_sizes()).critical_path_delay
        assert d_tran == pytest.approx(d_gate, rel=0.25)
