"""Tests for static timing analysis (paper equation (8))."""

import numpy as np
import pytest

from repro.circuit import CircuitBuilder
from repro.dag import build_sizing_dag
from repro.errors import TimingError
from repro.timing import (
    GraphTimer,
    analyze,
    critical_vertices,
    enumerate_paths,
    k_worst_paths,
    path_delay,
)


@pytest.fixture(scope="module")
def diamond(tech):
    """s -> (a | b) -> t diamond, for hand-checkable timing."""
    builder = CircuitBuilder("diamond")
    pi = builder.input("pi")
    s = builder.not_(pi, out="s")
    a = builder.not_(s, out="a")
    b = builder.not_(s, out="b")
    t = builder.gate("NAND2", [a, b], out="t")
    builder.output(t)
    return build_sizing_dag(builder.build(), tech, mode="gate")


class TestArrivalRequired:
    def test_hand_computed_diamond(self, diamond):
        timer = GraphTimer(diamond)
        label = {v.label: v.index for v in diamond.vertices}
        delay = np.zeros(diamond.n)
        delay[label["g0_inv"]] = 1.0   # s
        delay[label["g1_inv"]] = 2.0   # a
        delay[label["g2_inv"]] = 5.0   # b
        delay[label["g3_nand2"]] = 3.0  # t
        report = timer.analyze(delay)
        assert report.at[label["g0_inv"]] == 0.0
        assert report.at[label["g1_inv"]] == 1.0
        assert report.at[label["g3_nand2"]] == 6.0  # through b
        assert report.critical_path_delay == 9.0
        assert report.rt[label["g3_nand2"]] == 6.0
        assert report.slack[label["g2_inv"]] == 0.0
        assert report.slack[label["g1_inv"]] == 3.0  # a has 3 units slack

    def test_critical_path_trace(self, diamond):
        timer = GraphTimer(diamond)
        label = {v.label: v.index for v in diamond.vertices}
        delay = np.zeros(diamond.n)
        delay[label["g0_inv"]] = 1.0
        delay[label["g1_inv"]] = 2.0
        delay[label["g2_inv"]] = 5.0
        delay[label["g3_nand2"]] = 3.0
        path = timer.analyze(delay).critical_path()
        names = [diamond.vertices[v].label for v in path]
        assert names == ["g0_inv", "g2_inv", "g3_nand2"]

    def test_edge_slack_definition(self, diamond):
        timer = GraphTimer(diamond)
        report = timer.analyze(diamond.delays(diamond.min_sizes()))
        src, dst = diamond.edge_src, diamond.edge_dst
        manual = report.rt[dst] - report.at[src] - report.delay[src]
        assert report.edge_slack == pytest.approx(manual)

    def test_safe_circuit(self, c17_gate_dag):
        report = analyze(c17_gate_dag, c17_gate_dag.min_sizes())
        assert report.is_safe()
        # Horizon below CP makes the circuit unsafe.
        tight = analyze(
            c17_gate_dag,
            c17_gate_dag.min_sizes(),
            horizon=report.critical_path_delay * 0.9,
        )
        assert not tight.is_safe()

    def test_horizon_extends_slack(self, c17_gate_dag):
        x = c17_gate_dag.min_sizes()
        base = analyze(c17_gate_dag, x)
        relaxed = analyze(
            c17_gate_dag, x, horizon=base.critical_path_delay + 100.0
        )
        assert relaxed.slack.min() == pytest.approx(100.0)

    def test_rejects_negative_delay(self, c17_gate_dag):
        timer = GraphTimer(c17_gate_dag)
        bad = np.full(c17_gate_dag.n, -1.0)
        with pytest.raises(TimingError):
            timer.analyze(bad)

    def test_rejects_wrong_shape(self, c17_gate_dag):
        timer = GraphTimer(c17_gate_dag)
        with pytest.raises(TimingError):
            timer.analyze(np.ones(3))


class TestAgainstExhaustivePaths:
    def test_cp_matches_worst_path(self, c17_gate_dag):
        rng = np.random.default_rng(1)
        timer = GraphTimer(c17_gate_dag)
        for _ in range(10):
            delay = rng.uniform(0.5, 5.0, size=c17_gate_dag.n)
            report = timer.analyze(delay)
            worst = k_worst_paths(c17_gate_dag, delay, k=1)[0]
            assert report.critical_path_delay == pytest.approx(worst[0])

    def test_adder_cp_matches_enumeration(self, adder8_dag):
        rng = np.random.default_rng(2)
        delay = rng.uniform(0.5, 3.0, size=adder8_dag.n)
        report = GraphTimer(adder8_dag).analyze(delay)
        best = max(
            path_delay(delay, p) for p in enumerate_paths(adder8_dag)
        )
        assert report.critical_path_delay == pytest.approx(best)

    def test_critical_path_is_actually_critical(self, adder8_dag):
        rng = np.random.default_rng(3)
        delay = rng.uniform(0.5, 3.0, size=adder8_dag.n)
        report = GraphTimer(adder8_dag).analyze(delay)
        path = report.critical_path()
        assert path_delay(delay, path) == pytest.approx(
            report.critical_path_delay
        )
        assert path[0] in adder8_dag.sources


class TestCriticalCloud:
    def test_critical_vertices_have_zero_slack(self, c17_gate_dag):
        report = analyze(c17_gate_dag, c17_gate_dag.min_sizes())
        cloud = critical_vertices(report)
        assert len(cloud) >= 1
        assert np.all(report.slack[cloud] <= 1e-6 * report.horizon)

    def test_enumeration_limit(self, adder8_dag):
        with pytest.raises(ValueError, match="paths"):
            list(enumerate_paths(adder8_dag, limit=3))
