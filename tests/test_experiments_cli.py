"""Tests for the experiment harnesses and the command-line interface."""

import pytest

from repro.experiments import (
    format_panel,
    format_table1,
    run_panel,
    run_row,
    select_specs,
)
from repro.experiments.table1 import Table1Row
from repro.generators.iscas import SUITE


class TestTable1Harness:
    def test_select_specs_tiers(self):
        smoke = select_specs("smoke")
        paper = select_specs("paper")
        assert {s.name for s in smoke} < {s.name for s in paper}
        assert len(paper) == len(SUITE)

    def test_select_specs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_TIER", "smoke")
        assert [s.name for s in select_specs()] == [
            s.name for s in select_specs("smoke")
        ]

    def test_select_specs_bad_tier(self):
        with pytest.raises(ValueError, match="tier"):
            select_specs("galaxy")

    def test_run_row_smallest(self):
        spec = next(s for s in SUITE if s.name == "c432eq")
        row = run_row(spec)
        assert row.feasible
        assert row.area_saving_percent > 0
        assert row.tilos_seconds > 0
        assert row.n_gates > 100

    def test_format_table1(self):
        rows = [
            Table1Row(
                name="demo",
                n_gates=10,
                paper_gates=12,
                delay_spec=0.4,
                feasible=True,
                area_saving_percent=5.0,
                paper_saving_percent=4.0,
                tilos_seconds=0.1,
                minflo_extra_seconds=0.2,
                minflo_iterations=7,
                area_ratio_vs_min=1.5,
            ),
            Table1Row(
                name="bad",
                n_gates=10,
                paper_gates=12,
                delay_spec=0.4,
                feasible=False,
                area_saving_percent=float("nan"),
                paper_saving_percent=4.0,
                tilos_seconds=0.1,
                minflo_extra_seconds=float("nan"),
                minflo_iterations=0,
                area_ratio_vs_min=float("nan"),
            ),
        ]
        text = format_table1(rows)
        assert "demo" in text
        assert "5.0" in text
        assert "--" in text  # infeasible row rendered with placeholders


class TestFigure7Harness:
    def test_run_panel_small(self):
        curve = run_panel("c17", ratios=[0.6, 1.0])
        assert len(curve.points) == 2
        text = format_panel(curve)
        assert "c17" in text
        assert "T/Dmin" in text


class TestCli:
    def test_suite_listing(self, capsys):
        from repro.__main__ import main

        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "c6288eq" in out

    def test_stats(self, capsys):
        from repro.__main__ import main

        assert main(["stats", "c17"]) == 0
        out = capsys.readouterr().out
        assert "6 gates" in out
        assert "NAND2" in out

    def test_size_command(self, capsys, tmp_path):
        from repro.__main__ import main

        out_file = tmp_path / "sizes.txt"
        code = main(
            ["size", "c17", "--spec", "0.6", "--out", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        lines = out_file.read_text().splitlines()
        assert len(lines) == 6  # one per gate
        out = capsys.readouterr().out
        assert "area saved over TILOS" in out

    def test_size_infeasible_spec(self, capsys):
        from repro.__main__ import main

        code = main(["size", "c17", "--spec", "0.01"])
        assert code == 1
        assert "delay floor" in capsys.readouterr().out

    def test_size_bench_file(self, capsys, tmp_path, c17):
        from repro.__main__ import main
        from repro.circuit import save_bench

        path = save_bench(c17, tmp_path / "mine.bench")
        assert main(["size", str(path), "--spec", "0.7"]) == 0

    def test_size_wires_flag(self, capsys):
        from repro.__main__ import main

        assert main(["size", "c17", "--spec", "0.6", "--wires"]) == 0

    def test_unknown_circuit_exit_code(self, capsys):
        from repro.__main__ import main

        assert main(["size", "nosuchckt", "--spec", "0.5"]) == 2
        err = capsys.readouterr().err
        assert "unknown benchmark 'nosuchckt'" in err
        assert "c432eq" in err  # the message lists the known names

    def test_unknown_circuit_stats_exit_code(self, capsys):
        from repro.__main__ import main

        assert main(["stats", "nosuchckt"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_nonpositive_spec_exit_code(self, capsys):
        from repro.__main__ import main

        for bad in ("0", "-0.4"):
            assert main(["size", "c17", "--spec", bad]) == 2
            assert "positive fraction" in capsys.readouterr().err

    def test_bad_backend_exit_code(self, capsys):
        from repro.__main__ import main

        assert main(["size", "c17", "--spec", "0.6",
                     "--flow-backend", "warp-drive"]) == 2
        assert "unknown flow backend" in capsys.readouterr().err

    def test_suite_json(self, capsys):
        import json

        from repro.__main__ import main

        assert main(["suite", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {e["name"] for e in entries} == {s.name for s in SUITE}
        assert all("delay_spec" in e and "tier" in e for e in entries)

    def test_stats_json(self, capsys):
        import json

        from repro.__main__ import main

        assert main(["stats", "c17", "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["name"] == "c17"
        assert info["n_gates"] == 6
        assert info["cells"]["NAND2"] == 6
