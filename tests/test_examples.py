"""Smoke tests for the runnable examples (so the docs' links never rot).

Each script in ``tools/check_docs.py``'s :data:`EXAMPLE_SMOKE` list
must run to completion as a real subprocess — the same check CI's docs
job performs via ``python tools/check_docs.py --examples``.  The
scripts self-verify (asserting cache replay, byte-identity, service
shutdown), so exit code 0 plus their final marker line is a meaningful
pass.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

#: Real subprocess runs of full example campaigns — the classic slow
#: smoke (see ``tests/conftest.py`` for the marker contract).
pytestmark = pytest.mark.slow

#: script -> marker that its last verification step prints.
EXAMPLES = {
    "examples/size_one.py": "read back intact",
    "examples/sweep_campaign.py": "replay verified",
    "examples/query_service.py": "service stopped",
}


def _run(script: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    return subprocess.run(
        [sys.executable, str(ROOT / script)],
        cwd=ROOT, env=env, capture_output=True, text=True, timeout=300,
    )


@pytest.mark.parametrize("script, marker", sorted(EXAMPLES.items()))
def test_example_runs_clean(script, marker):
    proc = _run(script)
    assert proc.returncode == 0, proc.stderr
    assert marker in proc.stdout


def test_example_list_matches_check_docs():
    """The pytest list and the check_docs list must not drift apart."""
    sys.path.insert(0, str(ROOT / "tools"))
    from check_docs import EXAMPLE_SMOKE

    assert set(EXAMPLE_SMOKE) == set(EXAMPLES)
