"""Tests for technology mapping, pruning and fanout buffering."""

import random

import pytest

from repro.circuit import (
    CircuitBuilder,
    circuit_stats,
    is_primitive_circuit,
    map_to_primitives,
    prune_dangling,
)
from repro.circuit.transform import buffer_high_fanout
from repro.generators import build_circuit, random_logic


def _equivalent(first, second, n_vectors=25, seed=0):
    """Randomized logic-equivalence check on common outputs."""
    assert set(first.inputs) == set(second.inputs)
    assert set(first.outputs) == set(second.outputs)
    rng = random.Random(seed)
    for _ in range(n_vectors):
        ins = {net: rng.random() < 0.5 for net in first.inputs}
        va = first.evaluate(ins)
        vb = second.evaluate(ins)
        for out in first.outputs:
            if va[out] != vb[out]:
                return False
    return True


class TestMapping:
    def test_mapped_circuit_is_primitive(self):
        source = build_circuit("c499eq")
        assert not is_primitive_circuit(source)
        mapped = map_to_primitives(source)
        assert is_primitive_circuit(mapped)

    def test_mapping_preserves_function(self):
        builder = CircuitBuilder("mix")
        a, b, c = builder.inputs(["a", "b", "c"])
        builder.output(builder.xor(a, b))
        builder.output(builder.xnor(b, c))
        builder.output(builder.and_(a, b, c))
        builder.output(builder.or_(a, c))
        builder.output(builder.buf(b))
        source = builder.build()
        mapped = map_to_primitives(source)
        assert _equivalent(source, mapped)

    def test_mapping_idempotent_on_primitives(self, c17):
        mapped = map_to_primitives(c17)
        assert mapped.n_gates == c17.n_gates

    def test_mapping_grows_gate_count(self):
        source = build_circuit("c499eq")
        mapped = map_to_primitives(source)
        assert mapped.n_gates > source.n_gates
        # Device count is identical: same transistors, finer granularity.
        assert mapped.device_count() == source.device_count()


class TestPruneDangling:
    def test_removes_dead_cone(self):
        builder = CircuitBuilder("t")
        a = builder.input("a")
        live = builder.not_(a)
        dead1 = builder.not_(a)
        builder.not_(dead1)  # two-gate dead cone
        builder.output(live)
        circuit = builder.build()
        pruned = prune_dangling(circuit)
        assert pruned.n_gates == 1

    def test_noop_on_clean_circuit(self, c17):
        assert prune_dangling(c17) is c17

    def test_preserves_function(self):
        builder = CircuitBuilder("t")
        a, b = builder.inputs(["a", "b"])
        keep = builder.nand(a, b)
        builder.nor(a, keep)  # dangling
        builder.output(keep)
        circuit = builder.build()
        pruned = prune_dangling(circuit)
        for bits in range(4):
            ins = {"a": bool(bits & 1), "b": bool(bits >> 1)}
            assert circuit.evaluate(ins)[keep] == pruned.evaluate(ins)[keep]


class TestBufferHighFanout:
    def test_limits_fanout(self):
        builder = CircuitBuilder("t")
        a = builder.input("a")
        hub = builder.not_(a)
        sinks = [builder.not_(hub) for _ in range(30)]
        for s in sinks:
            builder.output(s)
        circuit = builder.build()
        buffered = buffer_high_fanout(circuit, max_fanout=8)
        for net in buffered.nets:
            assert buffered.fanout_count(net) <= 8
        assert buffered.n_gates > circuit.n_gates

    def test_preserves_function(self):
        source = random_logic(120, n_inputs=10, seed=9, locality=200)
        buffered = buffer_high_fanout(source, max_fanout=4)
        assert _equivalent(source, buffered)

    def test_primary_output_stays_on_original_net(self):
        builder = CircuitBuilder("t")
        a = builder.input("a")
        hub = builder.not_(a)
        for _ in range(20):
            builder.output(builder.not_(hub))
        builder.output(hub)
        circuit = builder.build()
        buffered = buffer_high_fanout(circuit, max_fanout=4)
        assert hub in buffered.outputs

    def test_rejects_silly_max_fanout(self, c17):
        with pytest.raises(ValueError):
            buffer_high_fanout(c17, max_fanout=1)

    def test_noop_below_threshold(self, c17):
        buffered = buffer_high_fanout(c17, max_fanout=8)
        assert buffered.n_gates == c17.n_gates


class TestGeneratedCircuitsAreClean:
    @pytest.mark.parametrize(
        "name", ["c432eq", "c499eq", "c880eq", "adder32"]
    )
    def test_no_dangling(self, name):
        from repro.circuit.validate import validate_circuit

        circuit = build_circuit(name)
        kinds = {lint.kind for lint in validate_circuit(circuit)}
        assert "dangling-output" not in kinds

    @pytest.mark.parametrize("name", ["c432eq", "c880eq"])
    def test_fanout_bounded(self, name):
        circuit = build_circuit(name)
        stats = circuit_stats(circuit)
        assert stats.max_fanout <= 16
