"""Tests for delay balancing and FSDU displacement (paper §2.3.1).

Covers the figure 3/4 example style (hand-checkable FSDU values),
legality verification, and theorems 1 and 2.
"""

import numpy as np
import pytest

from repro.balancing import balance, displace, verify_configuration
from repro.circuit import CircuitBuilder
from repro.dag import build_sizing_dag
from repro.errors import BalancingError
from repro.timing import GraphTimer


@pytest.fixture(scope="module")
def reconvergent(tech):
    """pi -> s -> {a -> b, b} with a skip edge, like figure 3's slack mix.

    Gates: s (INV), a (INV), b (NAND2 reading a and s).
    """
    builder = CircuitBuilder("skip")
    pi = builder.input("pi")
    s = builder.not_(pi, out="s")
    a = builder.not_(s, out="a")
    b = builder.gate("NAND2", [a, s], out="b")
    builder.output(b)
    return build_sizing_dag(builder.build(), tech, mode="gate")


def _index_by_label(dag):
    return {v.label: v.index for v in dag.vertices}


class TestBalance:
    def test_hand_computed_fsdus(self, reconvergent):
        """ASAP balance of the skip DAG: all slack on the skip edge."""
        dag = reconvergent
        ix = _index_by_label(dag)
        delay = np.zeros(dag.n)
        delay[ix["g0_inv"]] = 1.0   # s
        delay[ix["g1_inv"]] = 2.0   # a
        delay[ix["g2_nand2"]] = 1.0  # b
        config = balance(dag, delay)  # horizon = CP = 4
        edge_lookup = {edge: k for k, edge in enumerate(dag.edges)}
        s, a, b = ix["g0_inv"], ix["g1_inv"], ix["g2_nand2"]
        assert config.horizon == pytest.approx(4.0)
        assert config.wire_fsdu[edge_lookup[(s, a)]] == pytest.approx(0.0)
        assert config.wire_fsdu[edge_lookup[(a, b)]] == pytest.approx(0.0)
        # Skip edge s->b carries the 2 units of path slack.
        assert config.wire_fsdu[edge_lookup[(s, b)]] == pytest.approx(2.0)
        assert config.po_fsdu[0] == pytest.approx(0.0)
        assert config.delay_fsdu == pytest.approx(np.zeros(dag.n))

    def test_alap_pushes_fsdus_early(self, reconvergent):
        dag = reconvergent
        ix = _index_by_label(dag)
        delay = np.zeros(dag.n)
        delay[ix["g0_inv"]] = 1.0
        delay[ix["g1_inv"]] = 2.0
        delay[ix["g2_nand2"]] = 1.0
        asap = balance(dag, delay, method="asap")
        alap = balance(dag, delay, method="alap")
        # Same captured slack, different placement.
        assert asap.total_fsdu == pytest.approx(alap.total_fsdu)

    @pytest.mark.parametrize("method", ["asap", "alap", "dfs"])
    def test_all_methods_verify(self, adder8_dag, method):
        rng = np.random.default_rng(4)
        delay = rng.uniform(0.5, 3.0, size=adder8_dag.n)
        config = balance(adder8_dag, delay, method=method)
        verify_configuration(config)  # raises on violation

    def test_horizon_slack_goes_to_po_edges(self, c17_gate_dag):
        delay = c17_gate_dag.delays(c17_gate_dag.min_sizes())
        timer = GraphTimer(c17_gate_dag)
        cp = timer.analyze(delay).critical_path_delay
        config = balance(c17_gate_dag, delay, horizon=cp + 50.0)
        verify_configuration(config)
        assert config.po_fsdu.min() >= 50.0 - 1e-9

    def test_unsafe_circuit_rejected(self, c17_gate_dag):
        delay = c17_gate_dag.delays(c17_gate_dag.min_sizes())
        timer = GraphTimer(c17_gate_dag)
        cp = timer.analyze(delay).critical_path_delay
        with pytest.raises(BalancingError, match="not safe"):
            balance(c17_gate_dag, delay, horizon=0.5 * cp)

    def test_unknown_method(self, c17_gate_dag):
        delay = c17_gate_dag.delays(c17_gate_dag.min_sizes())
        with pytest.raises(BalancingError, match="unknown"):
            balance(c17_gate_dag, delay, method="random")

    def test_total_fsdu_is_invariant_across_configs(self, adder8_dag):
        """Theorem 1 corollary: configurations differ by displacement,
        and with pinned endpoints the total per-path slack is fixed."""
        rng = np.random.default_rng(5)
        delay = rng.uniform(0.5, 3.0, size=adder8_dag.n)
        totals = {
            method: balance(adder8_dag, delay, method=method).total_fsdu
            for method in ("asap", "alap", "dfs")
        }
        # Totals differ in general (edges are shared between paths) but
        # every config must capture at least the critical-path slack of
        # zero and verify; sanity: all totals positive and finite.
        assert all(np.isfinite(t) and t >= 0 for t in totals.values())


class TestDisplacement:
    def test_theorem1_asap_to_alap(self, adder8_dag):
        """ALAP is an FSDU-displacement of ASAP with r = theta difference."""
        rng = np.random.default_rng(6)
        delay = rng.uniform(0.5, 3.0, size=adder8_dag.n)
        asap = balance(adder8_dag, delay, method="asap")
        alap = balance(adder8_dag, delay, method="alap")
        # Displace ASAP by r(v) = theta_alap(v) - theta_asap(v) at both
        # the vertex and its dummy (delays unchanged).
        r = alap.theta - asap.theta
        moved = displace(asap, r_vertex=r, r_dummy=r, r_sink=0.0)
        assert moved.wire_fsdu == pytest.approx(alap.wire_fsdu, abs=1e-9)
        assert moved.po_fsdu == pytest.approx(alap.po_fsdu, abs=1e-9)
        verify_configuration(moved)

    def test_theorem2_path_delay_change(self, reconvergent):
        """Net change of a path's total equals r(end) - r(start)."""
        dag = reconvergent
        ix = _index_by_label(dag)
        delay = np.zeros(dag.n)
        delay[ix["g0_inv"]] = 1.0
        delay[ix["g1_inv"]] = 2.0
        delay[ix["g2_nand2"]] = 1.0
        config = balance(dag, delay)
        # A legal displacement with pinned source/sink (r = 0 there):
        # shifts budget onto s and a, takes one unit away from b.
        r_vertex = np.zeros(dag.n)
        r_dummy = np.zeros(dag.n)
        s, a, b = ix["g0_inv"], ix["g1_inv"], ix["g2_nand2"]
        r_dummy[s] = 0.4   # s delay budget +0.4
        r_vertex[a] = 0.5
        r_dummy[a] = 1.0   # a delay budget +0.5
        r_vertex[b] = 1.0  # b delay budget -1.0
        moved = displace(config, r_vertex, r_dummy)
        assert moved.delay_fsdu[s] == pytest.approx(0.4)
        assert moved.delay_fsdu[a] == pytest.approx(0.5)
        assert moved.delay_fsdu[b] == pytest.approx(-1.0)
        # Path s -> a -> b total: sum of effective delays + wire FSDUs.
        edge_lookup = {edge: k for k, edge in enumerate(dag.edges)}
        eff = moved.effective_delay()

        def path_total(path):
            total = 0.0
            for i, v in enumerate(path):
                total += eff[v]
                if i + 1 < len(path):
                    total += moved.wire_fsdu[edge_lookup[(v, path[i + 1])]]
            total += moved.po_fsdu[dag.po_vertices.index(path[-1])]
            return total

        # Theorem 2 with pinned ends: every complete path still totals
        # the horizon after displacement.
        assert path_total([s, a, b]) == pytest.approx(config.horizon)
        assert path_total([s, b]) == pytest.approx(config.horizon)

    def test_displacement_detects_negative_fsdu(self, reconvergent):
        dag = reconvergent
        ix = _index_by_label(dag)
        delay = np.zeros(dag.n)
        delay[ix["g0_inv"]] = 1.0
        delay[ix["g1_inv"]] = 2.0
        delay[ix["g2_nand2"]] = 1.0
        config = balance(dag, delay)
        r_vertex = np.zeros(dag.n)
        r_dummy = np.zeros(dag.n)
        # Pull the dummy of the NAND2 down: its input wire FSDU (= 0 on
        # the a->b edge) would go negative.
        r_vertex[ix["g2_nand2"]] = -1.0
        with pytest.raises(BalancingError):
            displace(config, r_vertex, r_dummy)

    def test_verify_catches_corruption(self, c17_gate_dag):
        delay = c17_gate_dag.delays(c17_gate_dag.min_sizes())
        config = balance(c17_gate_dag, delay)
        config.wire_fsdu[0] += 1.0
        with pytest.raises(BalancingError):
            verify_configuration(config)
