"""Property-based tests (hypothesis) on the core invariants.

Random circuits and sizings exercise:

* STA consistency (slacks, edge slacks, critical path realization),
* delay-balancing legality on arbitrary DAGs and delay vectors,
* W-phase least-fixed-point minimality and monotonicity,
* flow/LP duality across solver backends,
* scale invariance of sizing decisions,
* batched-kernel fixed points independent of batch grouping and order,
* cache-key invariance under job reordering,
* serialize round-trip identity on schema-v2 payloads,
* warm-start fingerprints invariant under relabeling, and retrieval
  distance symmetric and zero exactly on identical (circuit, options).
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.balancing import balance, verify_configuration
from repro.circuit import Circuit
from repro.dag import build_sizing_dag
from repro.flow import (
    DifferenceConstraintLP,
    registered_backends,
    solve_difference_lp,
)
from repro.generators import random_logic
from repro.runner.cache import job_key
from repro.runner.corpus import WarmSession
from repro.runner.executor import campaign_keys
from repro.runner.spec import Job
from repro.sizing import w_phase
from repro.sizing.fingerprint import (
    dag_digest,
    dag_features,
    fingerprint_distance,
)
from repro.sizing.batch import build_batched_smp_plan, solve_smp_batched
from repro.sizing.kernels import get_smp_plan, solve_smp_blocked
from repro.sizing.result import IterationRecord, SizingResult
from repro.sizing.serialize import (
    VOLATILE_PAYLOAD_KEYS,
    canonical_json,
    comparable_payload,
    result_from_dict,
    result_to_dict,
)
from repro.tech import default_technology
from repro.timing import GraphTimer

_TECH = default_technology()
_SETTINGS = dict(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_dags(draw):
    n_gates = draw(st.integers(min_value=4, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    locality = draw(st.sampled_from([4, 12, 48]))
    circuit = random_logic(
        n_gates, n_inputs=4, n_outputs=3, seed=seed, locality=locality
    )
    return build_sizing_dag(circuit, _TECH, mode="gate")


@st.composite
def dag_with_delays(draw):
    dag = draw(small_dags())
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    delay = rng.uniform(0.5, 10.0, size=dag.n)
    return dag, delay


class TestStaProperties:
    @given(dag_with_delays())
    @settings(**_SETTINGS)
    def test_slack_relations(self, case):
        dag, delay = case
        report = GraphTimer(dag).analyze(delay)
        # AT + delay <= CP on every vertex that reaches an output.
        finite = np.isfinite(report.rt)
        assert np.all(
            report.at[finite] + delay[finite]
            <= report.critical_path_delay + 1e-9
        )
        # Vertex slack >= 0 at horizon == CP; some vertex has zero slack.
        assert report.slack[finite].min() >= -1e-9
        assert report.slack[finite].min() == pytest.approx(0.0, abs=1e-6)
        # Edge slack >= 0 everywhere at the CP horizon.
        assert report.edge_slack.min() >= -1e-9

    @given(dag_with_delays())
    @settings(**_SETTINGS)
    def test_critical_path_realizes_cp(self, case):
        dag, delay = case
        report = GraphTimer(dag).analyze(delay)
        path = report.critical_path()
        total = sum(delay[v] for v in path)
        assert total == pytest.approx(report.critical_path_delay)
        for u, v in zip(path, path[1:]):
            assert v in dag.fanout[u]


class TestBalancingProperties:
    @given(dag_with_delays(), st.sampled_from(["asap", "alap", "dfs"]))
    @settings(**_SETTINGS)
    def test_balance_always_legal(self, case, method):
        dag, delay = case
        config = balance(dag, delay, method=method)
        verify_configuration(config)
        assert config.wire_fsdu.min() >= 0.0
        assert config.po_fsdu.min() >= 0.0

    @given(dag_with_delays(), st.floats(min_value=1.01, max_value=3.0))
    @settings(**_SETTINGS)
    def test_balance_with_relaxed_horizon(self, case, stretch):
        dag, delay = case
        timer = GraphTimer(dag)
        cp = timer.analyze(delay).critical_path_delay
        config = balance(dag, delay, horizon=stretch * cp, timer=timer)
        verify_configuration(config)


class TestWPhaseProperties:
    @given(small_dags(), st.integers(min_value=0, max_value=9999))
    @settings(**_SETTINGS)
    def test_least_fixed_point_dominates_nothing(self, dag, seed):
        """W-phase x is componentwise below the reference sizing whose
        delays define the budgets (minimality of the LFP)."""
        rng = np.random.default_rng(seed)
        x_ref = rng.uniform(1.0, 6.0, size=dag.n)
        budgets = dag.delays(x_ref)
        result = w_phase(dag, budgets)
        assert result.feasible
        assert np.all(result.x <= x_ref + 1e-8)
        assert np.all(result.delays <= budgets * (1 + 1e-8))

    @given(small_dags(), st.integers(min_value=0, max_value=9999))
    @settings(**_SETTINGS)
    def test_monotone_in_budgets(self, dag, seed):
        """Looser budgets never need larger sizes (antitone map)."""
        rng = np.random.default_rng(seed)
        x_ref = rng.uniform(1.5, 5.0, size=dag.n)
        budgets = dag.delays(x_ref)
        tight = w_phase(dag, budgets)
        loose = w_phase(dag, budgets * 1.25)
        assert np.all(loose.x <= tight.x + 1e-9)


class TestFlowProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(**_SETTINGS)
    def test_backend_agreement(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 16))
        weights = rng.integers(-4, 5, size=n).astype(float)
        lp = DifferenceConstraintLP(
            n_nodes=n, weights=weights, pinned=frozenset({0})
        )
        for v in range(1, n):
            lp.add(v, 0, float(rng.integers(0, 8)))
            lp.add(0, v, float(rng.integers(0, 8)))
        for _ in range(3 * n):
            u, v = rng.integers(0, n, size=2)
            if u != v:
                lp.add(int(u), int(v), float(rng.integers(0, 10)))
        results = {
            backend.name: solve_difference_lp(lp, backend=backend.name)
            for backend in registered_backends()
        }
        assert len(results) >= 4  # ssp, ssp-legacy, networkx, scipy
        objectives = [sol.objective for sol in results.values()]
        scale = 1.0 + max(abs(v) for v in objectives)
        assert max(objectives) - min(objectives) <= 1e-6 * scale
        for solution in results.values():
            # Feasible potentials: every backend's r satisfies all
            # difference constraints and pins.
            lp.check_feasible(solution.r)


class TestScaleInvariance:
    @given(st.integers(min_value=0, max_value=500))
    @settings(deadline=None, max_examples=8)
    def test_capacitance_scaling_scales_delays_only(self, seed):
        """Scaling all caps by k scales all delays by k and leaves the
        W-phase sizing unchanged (ratio-metric invariance that justifies
        the technology substitution in DESIGN.md)."""
        from repro.tech import scaled_technology

        circuit = random_logic(12, n_inputs=4, n_outputs=2, seed=seed)
        dag1 = build_sizing_dag(circuit, _TECH, mode="gate")
        dag2 = build_sizing_dag(circuit, scaled_technology(3.0), mode="gate")
        x = np.linspace(1.0, 4.0, dag1.n)
        d1, d2 = dag1.delays(x), dag2.delays(x)
        assert d2 == pytest.approx(3.0 * d1)
        budgets = d1 * 1.3
        r1 = w_phase(dag1, budgets)
        r2 = w_phase(dag2, budgets * 3.0)
        assert r2.x == pytest.approx(r1.x, rel=1e-9)


@st.composite
def batched_cases(draw):
    """2-4 independent W-phase SMP instances plus a random regrouping:
    a permutation of the instances and a cut point splitting the
    permuted order into two batches."""
    count = draw(st.integers(min_value=2, max_value=4))
    instances = []
    for _ in range(count):
        dag = draw(small_dags())
        spec = draw(st.floats(min_value=0.5, max_value=1.5))
        load = dag.delays(dag.min_sizes()) - dag.model.intrinsic
        budgets = dag.model.intrinsic + spec * load
        instances.append(
            (dag.model, budgets, dag.lower, dag.upper, get_smp_plan(dag))
        )
    order = list(draw(st.permutations(range(count))))
    cut = draw(st.integers(min_value=1, max_value=count))
    return instances, order, cut


class TestBatchGroupingInvariance:
    """The batched SMP kernel is exact: which batch an instance lands
    in — and where inside the batch — must not change its fixed point,
    its sweep count, or its clamped set."""

    @given(batched_cases())
    @settings(deadline=None, max_examples=10,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fixed_point_independent_of_grouping(self, case):
        instances, order, cut = case
        solo = [
            solve_smp_blocked(model, budgets, lower, upper, plan)
            for model, budgets, lower, upper, plan in instances
        ]
        results = [None] * len(instances)
        for group in (order[:cut], order[cut:]):
            if not group:
                continue
            models = [instances[i][0] for i in group]
            plan = build_batched_smp_plan(
                models, [instances[i][4] for i in group]
            )
            batched = solve_smp_batched(
                models,
                [instances[i][1] for i in group],
                [instances[i][2] for i in group],
                [instances[i][3] for i in group],
                plan,
            )
            for i, result in zip(group, batched):
                results[i] = result
        for got, want in zip(results, solo):
            assert got is not None
            assert np.array_equal(got.x, want.x)  # bitwise, not approx
            assert got.sweeps == want.sweeps
            assert got.clamped == want.clamped


@st.composite
def job_lists(draw):
    """2-6 campaign jobs over cheap circuits (duplicates allowed)."""
    count = draw(st.integers(min_value=2, max_value=6))
    return [
        Job(
            circuit=draw(st.sampled_from(["c17", "rca:2", "rca:4", "rca:6"])),
            delay_spec=draw(st.sampled_from([0.6, 0.8, 1.0, 1.2])),
            kind=draw(st.sampled_from(["sizing", "wphase"])),
            mode=draw(st.sampled_from(["gate", "transistor"])),
        )
        for _ in range(count)
    ]


class TestCacheKeyProperties:
    @given(job_lists(), st.integers(min_value=0, max_value=10_000))
    @settings(**_SETTINGS)
    def test_keys_invariant_under_job_reordering(self, jobs, seed):
        """A job's cache key is a pure function of the job — never of
        its position in the campaign or of its neighbours (the batched
        executor regroups jobs, so this is what keeps batched and
        per-job runs hitting the same cache entries)."""
        order = np.random.default_rng(seed).permutation(len(jobs))
        sentinel = object()  # campaign_keys only tests `cache is None`
        forward = campaign_keys(jobs, sentinel)
        shuffled = campaign_keys([jobs[i] for i in order], sentinel)
        for position, i in enumerate(order):
            assert shuffled[position] == forward[i]
        for job, key in zip(jobs, forward):
            assert key == job_key(job)


@st.composite
def small_circuits(draw):
    """Random netlists (not yet DAGs) so tests can relabel them."""
    n_gates = draw(st.integers(min_value=4, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    locality = draw(st.sampled_from([4, 12, 48]))
    return random_logic(
        n_gates, n_inputs=4, n_outputs=3, seed=seed, locality=locality
    )


def _relabeled(circuit: Circuit, seed: int) -> Circuit:
    """Isomorphic copy: fresh net/gate names, permuted insertion order."""
    rng = np.random.default_rng(seed)
    nets = list(circuit.inputs) + [g.output for g in circuit.gates]
    net_map = {
        net: f"net{int(k)}" for net, k in zip(nets, rng.permutation(len(nets)))
    }
    gates = list(circuit.gates)
    clone = Circuit(circuit.name + "-relabeled", library=circuit.library)
    for net in circuit.inputs:
        clone.add_input(net_map[net])
    for i in rng.permutation(len(gates)):
        gate = gates[int(i)]
        clone.add_gate(
            f"inst{int(i)}",
            gate.cell,
            [net_map[n] for n in gate.inputs],
            net_map[gate.output],
        )
    for net in circuit.outputs:
        clone.mark_output(net_map[net])
    return clone.freeze()


@st.composite
def corpus_queries(draw):
    """Corpus query records over random circuits, the exact dict shape
    the warm-start retrieval ranks (``WarmSession._build_query``)."""
    dag = build_sizing_dag(draw(small_circuits()), _TECH, mode="gate")
    options = {
        "bump": draw(st.sampled_from([1.05, 1.1, 1.2])),
        "engine": draw(st.sampled_from(["incremental", "scalar"])),
    }
    delay_spec = draw(st.sampled_from([0.6, 0.8, 0.9, None]))
    target = draw(st.sampled_from([1.0, 2.5, None]))
    return WarmSession(None)._build_query(
        "sizing", dag=dag, tech=_TECH, mode="gate", options=options,
        delay_spec=delay_spec, target=target,
    )


class TestFingerprintProperties:
    """The warm-start corpus contracts from ISSUE: features invariant
    under node relabeling and insertion order; retrieval distance
    symmetric and zero exactly on identical (circuit, options) pairs."""

    @given(small_circuits(), st.integers(min_value=0, max_value=9999))
    @settings(**_SETTINGS)
    def test_features_invariant_under_relabeling(self, circuit, seed):
        dag = build_sizing_dag(circuit, _TECH, mode="gate")
        relabeled = build_sizing_dag(
            _relabeled(circuit, seed), _TECH, mode="gate"
        )
        assert dag_features(relabeled) == dag_features(dag)

    @given(small_circuits())
    @settings(**_SETTINGS)
    def test_digest_and_features_deterministic(self, circuit):
        """Rebuilding the DAG from the same netlist reproduces both
        identity levels exactly (what makes cache rows comparable
        across processes)."""
        dag1 = build_sizing_dag(circuit, _TECH, mode="gate")
        dag2 = build_sizing_dag(circuit, _TECH, mode="gate")
        assert dag_digest(dag1) == dag_digest(dag2)
        assert dag_features(dag1) == dag_features(dag2)

    @given(corpus_queries(), corpus_queries())
    @settings(**_SETTINGS)
    def test_distance_symmetric(self, a, b):
        d = fingerprint_distance(a, b)
        assert d >= 0.0
        assert fingerprint_distance(b, a) == d

    @given(corpus_queries(), st.integers(min_value=0, max_value=9999))
    @settings(**_SETTINGS)
    def test_distance_zero_iff_identical_pair(self, query, seed):
        clone = json.loads(json.dumps(query))
        assert fingerprint_distance(query, clone) == 0.0
        # Any perturbation of the (circuit, options) identity moves the
        # distance strictly off zero...
        other_options = dict(query["options"], bump=9.9)
        assert fingerprint_distance(
            query, dict(clone, options=other_options)
        ) > 0.0
        assert fingerprint_distance(query, dict(clone, kind="wphase")) > 0.0
        assert fingerprint_distance(query, dict(clone, tech="other")) > 0.0
        spec = query["delay_spec"]
        bumped_spec = 0.7 if spec is None else spec + 0.05
        assert fingerprint_distance(
            query, dict(clone, delay_spec=bumped_spec)
        ) > 0.0
        # ...and a different circuit identity costs >= 1, so an exact
        # repeat always outranks cross-circuit transfer.
        assert fingerprint_distance(
            query, dict(clone, dag_sha="0" * 64)
        ) >= 1.0


_FINITE = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
_FRACTION = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def sizing_results(draw):
    """Random schema-v2 SizingResults, including the per-phase wall
    map (with the batched-execution key) and kernel telemetry."""
    n = draw(st.integers(min_value=1, max_value=12))
    x = np.array(
        draw(st.lists(
            st.floats(min_value=0.25, max_value=64.0, allow_nan=False),
            min_size=n, max_size=n,
        ))
    )
    iterations = [
        IterationRecord(
            iteration=i,
            area=draw(_FINITE),
            critical_path_delay=draw(_FINITE),
            predicted_gain=draw(_FINITE),
            alpha=draw(_FRACTION),
            accepted=draw(st.booleans()),
            backend=draw(st.sampled_from(["ssp", "scipy", "networkx"])),
            repropagated_vertices=draw(st.integers(0, 500)),
            cone_fraction=draw(_FRACTION),
            warm_start=draw(st.booleans()),
            augmentations=draw(st.integers(0, 100)),
            supply_routed=draw(_FINITE),
            w_sweeps=draw(st.integers(0, 50)),
            kernel=draw(st.sampled_from(["scalar", "vectorized"])),
        )
        for i in range(draw(st.integers(0, 3)))
    ]
    return SizingResult(
        name=draw(st.sampled_from(["c17", "rca:8", "rand"])),
        mode=draw(st.sampled_from(["gate", "transistor"])),
        x=x,
        area=draw(_FINITE),
        critical_path_delay=draw(_FINITE),
        target=draw(st.floats(min_value=1e-3, max_value=1e6)),
        converged=draw(st.booleans()),
        runtime_seconds=draw(_FINITE),
        initial_area=draw(_FINITE),
        iterations=iterations,
        phase_seconds={
            "timing": draw(_FINITE),
            "w_phase": draw(_FINITE),
            "batched": draw(_FINITE),
        },
    )


_JSON_LEAVES = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-100, max_value=100),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=8),
)
_JSON_PAYLOADS = st.recursive(
    _JSON_LEAVES,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.one_of(
                st.sampled_from(sorted(VOLATILE_PAYLOAD_KEYS)),
                st.text(max_size=8),
            ),
            children,
            max_size=4,
        ),
    ),
    max_leaves=20,
)


def _volatile_keys_in(node) -> bool:
    if isinstance(node, dict):
        return any(key in VOLATILE_PAYLOAD_KEYS for key in node) or any(
            _volatile_keys_in(value) for value in node.values()
        )
    if isinstance(node, list):
        return any(_volatile_keys_in(value) for value in node)
    return False


class TestSerializeProperties:
    @given(sizing_results())
    @settings(**_SETTINGS)
    def test_round_trip_identity(self, result):
        """dict -> canonical JSON -> dict -> SizingResult -> dict is the
        identity on schema-v2 payloads (the cache stores the first form
        and replays must be byte-identical)."""
        first = result_to_dict(result)
        rebuilt = result_from_dict(json.loads(canonical_json(first)))
        assert np.array_equal(rebuilt.x, result.x)
        assert canonical_json(result_to_dict(rebuilt)) \
            == canonical_json(first)

    @given(_JSON_PAYLOADS)
    @settings(**_SETTINGS)
    def test_comparable_payload_strips_volatile_keys(self, payload):
        """comparable_payload removes every wall-clock key at every
        depth and is idempotent — the byte-identity checks of the
        batched path compare exactly this normal form."""
        stripped = comparable_payload(payload)
        assert not _volatile_keys_in(stripped)
        assert comparable_payload(stripped) == stripped
        # The batched-execution telemetry keys are volatile by
        # definition: a stacked solve legitimately times differently.
        assert {"batched_seconds", "build_seconds"} <= VOLATILE_PAYLOAD_KEYS
        # Observability fields are per-execution telemetry: two runs of
        # the same job carry different trace/span identities and
        # monotonic durations, yet must stay byte-comparable.
        assert {
            "trace_id", "span_id", "parent_id", "spans", "duration_s",
        } <= VOLATILE_PAYLOAD_KEYS
