"""Property-based tests (hypothesis) on the core invariants.

Random circuits and sizings exercise:

* STA consistency (slacks, edge slacks, critical path realization),
* delay-balancing legality on arbitrary DAGs and delay vectors,
* W-phase least-fixed-point minimality and monotonicity,
* flow/LP duality across solver backends,
* scale invariance of sizing decisions.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.balancing import balance, verify_configuration
from repro.dag import build_sizing_dag
from repro.flow import (
    DifferenceConstraintLP,
    registered_backends,
    solve_difference_lp,
)
from repro.generators import random_logic
from repro.sizing import w_phase
from repro.tech import default_technology
from repro.timing import GraphTimer

_TECH = default_technology()
_SETTINGS = dict(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_dags(draw):
    n_gates = draw(st.integers(min_value=4, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    locality = draw(st.sampled_from([4, 12, 48]))
    circuit = random_logic(
        n_gates, n_inputs=4, n_outputs=3, seed=seed, locality=locality
    )
    return build_sizing_dag(circuit, _TECH, mode="gate")


@st.composite
def dag_with_delays(draw):
    dag = draw(small_dags())
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    delay = rng.uniform(0.5, 10.0, size=dag.n)
    return dag, delay


class TestStaProperties:
    @given(dag_with_delays())
    @settings(**_SETTINGS)
    def test_slack_relations(self, case):
        dag, delay = case
        report = GraphTimer(dag).analyze(delay)
        # AT + delay <= CP on every vertex that reaches an output.
        finite = np.isfinite(report.rt)
        assert np.all(
            report.at[finite] + delay[finite]
            <= report.critical_path_delay + 1e-9
        )
        # Vertex slack >= 0 at horizon == CP; some vertex has zero slack.
        assert report.slack[finite].min() >= -1e-9
        assert report.slack[finite].min() == pytest.approx(0.0, abs=1e-6)
        # Edge slack >= 0 everywhere at the CP horizon.
        assert report.edge_slack.min() >= -1e-9

    @given(dag_with_delays())
    @settings(**_SETTINGS)
    def test_critical_path_realizes_cp(self, case):
        dag, delay = case
        report = GraphTimer(dag).analyze(delay)
        path = report.critical_path()
        total = sum(delay[v] for v in path)
        assert total == pytest.approx(report.critical_path_delay)
        for u, v in zip(path, path[1:]):
            assert v in dag.fanout[u]


class TestBalancingProperties:
    @given(dag_with_delays(), st.sampled_from(["asap", "alap", "dfs"]))
    @settings(**_SETTINGS)
    def test_balance_always_legal(self, case, method):
        dag, delay = case
        config = balance(dag, delay, method=method)
        verify_configuration(config)
        assert config.wire_fsdu.min() >= 0.0
        assert config.po_fsdu.min() >= 0.0

    @given(dag_with_delays(), st.floats(min_value=1.01, max_value=3.0))
    @settings(**_SETTINGS)
    def test_balance_with_relaxed_horizon(self, case, stretch):
        dag, delay = case
        timer = GraphTimer(dag)
        cp = timer.analyze(delay).critical_path_delay
        config = balance(dag, delay, horizon=stretch * cp, timer=timer)
        verify_configuration(config)


class TestWPhaseProperties:
    @given(small_dags(), st.integers(min_value=0, max_value=9999))
    @settings(**_SETTINGS)
    def test_least_fixed_point_dominates_nothing(self, dag, seed):
        """W-phase x is componentwise below the reference sizing whose
        delays define the budgets (minimality of the LFP)."""
        rng = np.random.default_rng(seed)
        x_ref = rng.uniform(1.0, 6.0, size=dag.n)
        budgets = dag.delays(x_ref)
        result = w_phase(dag, budgets)
        assert result.feasible
        assert np.all(result.x <= x_ref + 1e-8)
        assert np.all(result.delays <= budgets * (1 + 1e-8))

    @given(small_dags(), st.integers(min_value=0, max_value=9999))
    @settings(**_SETTINGS)
    def test_monotone_in_budgets(self, dag, seed):
        """Looser budgets never need larger sizes (antitone map)."""
        rng = np.random.default_rng(seed)
        x_ref = rng.uniform(1.5, 5.0, size=dag.n)
        budgets = dag.delays(x_ref)
        tight = w_phase(dag, budgets)
        loose = w_phase(dag, budgets * 1.25)
        assert np.all(loose.x <= tight.x + 1e-9)


class TestFlowProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(**_SETTINGS)
    def test_backend_agreement(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 16))
        weights = rng.integers(-4, 5, size=n).astype(float)
        lp = DifferenceConstraintLP(
            n_nodes=n, weights=weights, pinned=frozenset({0})
        )
        for v in range(1, n):
            lp.add(v, 0, float(rng.integers(0, 8)))
            lp.add(0, v, float(rng.integers(0, 8)))
        for _ in range(3 * n):
            u, v = rng.integers(0, n, size=2)
            if u != v:
                lp.add(int(u), int(v), float(rng.integers(0, 10)))
        results = {
            backend.name: solve_difference_lp(lp, backend=backend.name)
            for backend in registered_backends()
        }
        assert len(results) >= 4  # ssp, ssp-legacy, networkx, scipy
        objectives = [sol.objective for sol in results.values()]
        scale = 1.0 + max(abs(v) for v in objectives)
        assert max(objectives) - min(objectives) <= 1e-6 * scale
        for solution in results.values():
            # Feasible potentials: every backend's r satisfies all
            # difference constraints and pins.
            lp.check_feasible(solution.r)


class TestScaleInvariance:
    @given(st.integers(min_value=0, max_value=500))
    @settings(deadline=None, max_examples=8)
    def test_capacitance_scaling_scales_delays_only(self, seed):
        """Scaling all caps by k scales all delays by k and leaves the
        W-phase sizing unchanged (ratio-metric invariance that justifies
        the technology substitution in DESIGN.md)."""
        from repro.tech import scaled_technology

        circuit = random_logic(12, n_inputs=4, n_outputs=2, seed=seed)
        dag1 = build_sizing_dag(circuit, _TECH, mode="gate")
        dag2 = build_sizing_dag(circuit, scaled_technology(3.0), mode="gate")
        x = np.linspace(1.0, 4.0, dag1.n)
        d1, d2 = dag1.delays(x), dag2.delays(x)
        assert d2 == pytest.approx(3.0 * d1)
        budgets = d1 * 1.3
        r1 = w_phase(dag1, budgets)
        r2 = w_phase(dag2, budgets * 3.0)
        assert r2.x == pytest.approx(r1.x, rel=1e-9)
