"""Tests for technology parameters, SP networks and the cell library."""

import pytest

from repro.errors import TechnologyError
from repro.tech import (
    Technology,
    default_library,
    default_technology,
    dual,
    leaf,
    parallel,
    scaled_technology,
    series,
    shared_default_library,
)
from repro.tech.networks import SPNetwork


class TestTechnology:
    def test_defaults_valid(self):
        tech = default_technology()
        assert tech.r_nmos > 0
        assert tech.max_size > tech.min_size

    def test_rejects_negative_resistance(self):
        with pytest.raises(TechnologyError):
            Technology(r_nmos=-1.0)

    def test_rejects_zero_gate_cap(self):
        with pytest.raises(TechnologyError):
            Technology(c_gate_n=0.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(TechnologyError):
            Technology(min_size=4.0, max_size=2.0)

    def test_beta_ratio(self):
        tech = default_technology()
        assert tech.beta_ratio == pytest.approx(tech.r_pmos / tech.r_nmos)

    def test_with_bounds_copies(self):
        tech = default_technology()
        widened = tech.with_bounds(2.0, 16.0)
        assert widened.min_size == 2.0
        assert tech.min_size == 1.0

    def test_scaled_technology_scales_caps_only(self):
        base = default_technology()
        doubled = scaled_technology(2.0)
        assert doubled.c_gate_n == pytest.approx(2 * base.c_gate_n)
        assert doubled.c_load == pytest.approx(2 * base.c_load)
        assert doubled.r_nmos == base.r_nmos

    def test_scaled_technology_rejects_nonpositive(self):
        with pytest.raises(TechnologyError):
            scaled_technology(0.0)


class TestSPNetworks:
    def test_leaf_requires_pin(self):
        with pytest.raises(TechnologyError):
            SPNetwork("leaf")

    def test_series_requires_two_children(self):
        with pytest.raises(TechnologyError):
            SPNetwork("series", children=(leaf("a"),))

    def test_unknown_kind(self):
        with pytest.raises(TechnologyError):
            SPNetwork("star", children=(leaf("a"), leaf("b")))

    def test_paths_of_series(self):
        net = series(leaf("a"), leaf("b"), leaf("c"))
        assert list(net.paths()) == [("a", "b", "c")]
        assert net.max_stack_depth == 3

    def test_paths_of_parallel(self):
        net = parallel(leaf("a"), leaf("b"))
        assert sorted(net.paths()) == [("a",), ("b",)]
        assert net.max_stack_depth == 1

    def test_aoi_structure(self):
        net = parallel(series(leaf("a"), leaf("b")), leaf("c"))
        assert sorted(net.paths()) == [("a", "b"), ("c",)]
        assert net.device_count == 3

    def test_dual_swaps_series_parallel(self):
        net = series(parallel(leaf("a"), leaf("b")), leaf("c"))
        d = dual(net)
        assert d.kind == "parallel"
        # dual((a|b).c) = (a.b)|c
        assert sorted(d.paths()) == [("a", "b"), ("c",)]

    def test_dual_involution(self):
        net = series(parallel(leaf("a"), leaf("b")), leaf("c"))
        assert dual(dual(net)) == net

    def test_str_rendering(self):
        net = series(leaf("a"), parallel(leaf("b"), leaf("c")))
        assert str(net) == "(a . (b | c))"


class TestCellLibrary:
    def test_default_library_contents(self):
        lib = default_library()
        for name in ("INV", "NAND2", "NAND3", "NAND4", "NOR2", "XOR2",
                     "AND4", "OR2", "BUF", "AOI21", "OAI21"):
            assert name in lib

    def test_shared_library_is_cached(self):
        assert shared_default_library() is shared_default_library()

    def test_device_counts(self):
        lib = default_library()
        assert lib.device_count("INV") == 2
        assert lib.device_count("NAND3") == 6
        assert lib.device_count("XOR2") == 16
        assert lib.device_count("AND2") == 6

    def test_cell_for_function(self):
        lib = default_library()
        assert lib.cell_for_function("NAND", 3).name == "NAND3"
        assert lib.cell_for_function("NOT", 1).name == "INV"
        with pytest.raises(TechnologyError):
            lib.cell_for_function("NAND", 9)

    def test_functions_evaluate(self):
        lib = default_library()
        assert lib.cell("NAND2").evaluate(True, True) is False
        assert lib.cell("NOR3").evaluate(False, False, False) is True
        assert lib.cell("XOR2").evaluate(True, False) is True
        assert lib.cell("AOI21").evaluate(True, True, False) is False
        assert lib.cell("OAI21").evaluate(False, False, True) is True

    def test_arity_mismatch_raises(self):
        lib = default_library()
        with pytest.raises(TechnologyError):
            lib.cell("NAND2").evaluate(True)

    def test_nand_stack_resistance(self, tech):
        lib = default_library()
        eq2 = lib.equivalent_inverter("NAND2", tech)
        eq4 = lib.equivalent_inverter("NAND4", tech)
        # NAND fall path is the NMOS stack: deeper stack, higher r_fall.
        assert eq4.r_fall == pytest.approx(2 * eq2.r_fall)
        # NAND rise is a single PMOS regardless of fan-in.
        assert eq4.r_rise == pytest.approx(eq2.r_rise)

    def test_nor_is_slower_than_nand(self, tech):
        lib = default_library()
        nand = lib.equivalent_inverter("NAND3", tech)
        nor = lib.equivalent_inverter("NOR3", tech)
        # The PMOS stack of the NOR dominates everything in the NAND.
        assert nor.r_eq > nand.r_eq

    def test_macro_cin_matches_inner_primitive(self, tech):
        lib = default_library()
        and2 = lib.equivalent_inverter("AND2", tech)
        nand2 = lib.equivalent_inverter("NAND2", tech)
        assert and2.cin == pytest.approx(nand2.cin)
        xor2 = lib.equivalent_inverter("XOR2", tech)
        assert xor2.cin == pytest.approx(2 * nand2.cin)

    def test_macro_has_internal_delay(self, tech):
        lib = default_library()
        inv = lib.equivalent_inverter("INV", tech)
        buf = lib.equivalent_inverter("BUF", tech)
        assert buf.intrinsic > inv.intrinsic
        assert buf.internal_load_delay > 0
        assert inv.internal_load_delay == 0

    def test_equivalent_inverter_cached(self, tech):
        lib = default_library()
        first = lib.equivalent_inverter("NAND2", tech)
        assert lib.equivalent_inverter("NAND2", tech) is first

    def test_unknown_cell(self):
        lib = default_library()
        with pytest.raises(TechnologyError):
            lib.cell("NAND9")
