"""Tests for the parallel sizing-campaign subsystem (repro.runner)."""

import json

import pytest

from repro import runner
from repro.errors import RunnerError
from repro.flow.registry import (
    SolveStats,
    record_stats,
    reset_solver_statistics,
    solver_statistics,
    stats_scope,
)
from repro.runner import (
    CampaignSpec,
    Job,
    ResultCache,
    job_key,
    load_run,
    run_campaign,
)
from repro.runner.executor import _EXECUTORS
from repro.runner.spec import normalize_options, resolve_circuit, tier_preset
from repro.sizing import serialize


def small_spec(name="small", specs=(0.6, 0.8)):
    return CampaignSpec(name=name, circuits=("c17",), delay_specs=specs)


def sizes_of(result):
    return [o.payload["result"]["x"] for o in result.outcomes]


class TestSpec:
    def test_expansion_is_deterministic_product(self):
        spec = CampaignSpec(
            name="m",
            circuits=("c17", "c432eq"),
            delay_specs=(0.5, 0.6),
            flow_backends=("ssp", "auto"),
        )
        jobs = spec.jobs()
        assert len(jobs) == 8
        assert jobs == spec.jobs()  # stable across expansions
        assert jobs[0].circuit == "c17" and jobs[0].flow_backend == "ssp"
        assert jobs[-1].circuit == "c432eq" and jobs[-1].delay_spec == 0.6

    def test_empty_delay_specs_use_suite_defaults(self):
        spec = CampaignSpec(name="t", circuits=("c432eq",))
        assert spec.jobs()[0].delay_spec == pytest.approx(0.4)

    def test_suite_default_unknown_circuit(self):
        with pytest.raises(RunnerError, match="delay spec"):
            CampaignSpec(name="t", circuits=("rca:8",)).jobs()

    def test_bad_job_parameters(self):
        with pytest.raises(RunnerError, match="positive"):
            Job(circuit="c17", delay_spec=0.0)
        with pytest.raises(RunnerError, match="kind"):
            Job(circuit="c17", delay_spec=0.5, kind="quantum")

    def test_spec_round_trips_through_dict(self):
        spec = CampaignSpec(
            name="rt",
            circuits=("c17",),
            delay_specs=(0.7,),
            options=normalize_options({"warm_start": False}),
        )
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        job = spec.jobs()[0]
        assert Job.from_dict(job.to_dict()) == job

    def test_normalize_options_rejects_unknown(self):
        with pytest.raises(RunnerError, match="unknown MinfloOptions"):
            normalize_options({"not_a_knob": 1})

    def test_options_reach_minflo(self):
        job = Job(
            circuit="c17",
            delay_spec=0.5,
            options=normalize_options({"warm_start": False, "alpha": 0.1}),
        )
        options = job.minflo_options()
        assert options.warm_start is False
        assert options.alpha == pytest.approx(0.1)

    def test_tier_preset_matches_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_TIER", "smoke")
        assert tier_preset().circuits == tier_preset("smoke").circuits
        assert len(tier_preset("paper").circuits) > len(
            tier_preset("smoke").circuits
        )
        with pytest.raises(RunnerError, match="tier"):
            tier_preset("galaxy")

    def test_resolve_rca_token(self):
        circuit = resolve_circuit("rca:4")
        assert circuit.n_gates > 0
        with pytest.raises(RunnerError, match="WIDTH"):
            resolve_circuit("rca:four")


class TestCache:
    def test_key_depends_on_content(self):
        j1 = Job(circuit="c17", delay_spec=0.6)
        assert job_key(j1) == job_key(Job(circuit="c17", delay_spec=0.6))
        assert job_key(j1) != job_key(Job(circuit="c17", delay_spec=0.7))
        assert job_key(j1) != job_key(
            Job(circuit="c17", delay_spec=0.6, flow_backend="ssp")
        )

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        cache.put(key, {"kind": "sizing", "result": None})
        assert cache.get(key) == {"kind": "sizing", "result": None}
        assert key in cache and len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        cache.put(key, {"kind": "sizing", "result": None})
        path = cache._path(key)
        path.write_text("{ not json")
        assert cache.get(key) is None

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" + "0" * 62
        payload = {
            "kind": "sizing",
            "result": {"schema_version": serialize.SCHEMA_VERSION + 1},
        }
        cache.put(key, payload)
        assert cache.get(key) is None
        payload["result"]["schema_version"] = serialize.SCHEMA_VERSION
        cache.put(key, payload)
        assert cache.get(key) is not None


class TestExecutor:
    def test_parallel_matches_serial(self, tmp_path):
        spec = small_spec()
        serial = runner.run(spec, jobs=1, cache=None)
        parallel = runner.run(spec, jobs=2, cache=None)
        assert [o.status for o in serial.outcomes] == ["ok", "ok"]
        assert sizes_of(parallel) == sizes_of(serial)

    def test_cache_hit_skips_sizing(self, tmp_path, monkeypatch):
        spec = small_spec()
        first = runner.run(spec, jobs=1, cache=tmp_path / "cache")

        def boom(job):
            raise AssertionError("cache hit must not re-run the job")

        monkeypatch.setitem(_EXECUTORS, "sizing", boom)
        second = runner.run(spec, jobs=1, cache=tmp_path / "cache")
        assert second.n_cached == len(second.outcomes) == 2
        assert sizes_of(second) == sizes_of(first)

    def test_no_cache_reruns(self, tmp_path, monkeypatch):
        spec = small_spec()
        runner.run(spec, jobs=1, cache=tmp_path / "cache")
        calls = []
        real = _EXECUTORS["sizing"]
        monkeypatch.setitem(
            _EXECUTORS, "sizing",
            lambda job: calls.append(job) or real(job),
        )
        result = runner.run(spec, jobs=1, cache=None)
        assert result.n_cached == 0
        assert len(calls) == 2

    def test_failure_is_isolated(self):
        jobs = [
            Job(circuit="c17", delay_spec=0.8),
            Job(circuit="definitely-not-a-circuit", delay_spec=0.5),
        ]
        result = run_campaign(jobs, jobs=1)
        assert [o.status for o in result.outcomes] == ["ok", "failed"]
        assert "definitely-not-a-circuit" in result.outcomes[1].error
        assert result.n_failed == 1

    def test_bad_token_with_cache_fails_in_isolation(self, tmp_path):
        spec = CampaignSpec(
            name="bad",
            circuits=("c17", "definitely-not-a-circuit"),
            delay_specs=(0.8,),
        )
        result = runner.run(spec, jobs=1, cache=tmp_path / "cache")
        assert [o.status for o in result.outcomes] == ["ok", "failed"]

    def test_timeout_marks_job(self):
        result = run_campaign(
            [Job(circuit="c432eq", delay_spec=0.4)], jobs=1, timeout=0.05
        )
        assert result.outcomes[0].status == "timeout"
        assert "budget" in result.outcomes[0].error

    def test_infeasible_target_is_a_completed_outcome(self, tmp_path):
        spec = small_spec(name="floor", specs=(0.01,))
        result = runner.run(spec, jobs=1, cache=tmp_path / "cache")
        assert result.outcomes[0].status == "infeasible"
        assert result.outcomes[0].payload["result"] is None
        again = runner.run(spec, jobs=1, cache=tmp_path / "cache")
        assert again.outcomes[0].cached
        assert again.outcomes[0].status == "infeasible"

    def test_per_job_flow_stats_are_isolated(self):
        spec = small_spec()
        result = runner.run(spec, jobs=1, cache=None)
        for outcome in result.outcomes:
            flow = outcome.payload["flow_stats"]
            assert flow, "sizing jobs must record their flow solves"
            iters = len(outcome.payload["result"]["iterations"])
            assert sum(s["solves"] for s in flow.values()) == iters


class TestRunOne:
    def test_run_one_executes_and_stores(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = Job(circuit="c17", delay_spec=0.7)
        outcome = runner.run_one(job, cache=cache)
        assert outcome.status == "ok" and not outcome.cached
        assert outcome.key in cache

    def test_run_one_replays_from_cache(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        job = Job(circuit="c17", delay_spec=0.7)
        first = runner.run_one(job, cache=cache)
        monkeypatch.setitem(_EXECUTORS, "sizing", lambda j: (
            (_ for _ in ()).throw(AssertionError("must replay"))
        ))
        second = runner.run_one(job, cache=cache)
        assert second.cached
        assert second.payload == first.payload

    def test_run_one_matches_campaign_payload(self, tmp_path):
        """One shared execution path: run_one == the campaign loop."""
        spec = small_spec(name="one", specs=(0.7,))
        campaign = runner.run(spec, jobs=1, cache=None)
        single = runner.run_one(spec.jobs()[0], cache=None)
        assert single.payload["result"]["x"] == (
            campaign.outcomes[0].payload["result"]["x"]
        )

    def test_run_one_isolates_failures(self):
        outcome = runner.run_one(
            Job(circuit="definitely-not-a-circuit", delay_spec=0.5)
        )
        assert outcome.status == "failed"
        assert "definitely-not-a-circuit" in outcome.error


class TestResume:
    def test_interrupt_then_resume_identical(self, tmp_path, monkeypatch):
        spec = small_spec(name="resumable")
        clean = runner.run(spec, jobs=1, cache=None)

        real = _EXECUTORS["sizing"]
        seen = []

        def interrupt_second(job):
            seen.append(job)
            if len(seen) == 2:
                raise KeyboardInterrupt
            return real(job)

        monkeypatch.setitem(_EXECUTORS, "sizing", interrupt_second)
        with pytest.raises(KeyboardInterrupt):
            runner.run(
                spec, jobs=1,
                cache=tmp_path / "cache", run_dir=tmp_path / "run",
            )
        monkeypatch.setitem(_EXECUTORS, "sizing", real)

        state = load_run(tmp_path / "run")
        assert state.counts() == {"ok": 1, "pending": 1}

        resumed = runner.resume(
            tmp_path / "run", jobs=1, cache=tmp_path / "cache"
        )
        assert [o.cached for o in resumed.outcomes] == [True, False]
        assert sizes_of(resumed) == sizes_of(clean)
        assert load_run(tmp_path / "run").counts() == {"ok": 2}

    def test_resume_without_log_errors(self, tmp_path):
        with pytest.raises(RunnerError, match="no campaign log"):
            runner.resume(tmp_path / "empty")

    def test_jsonl_records_are_replayable(self, tmp_path):
        spec = small_spec(name="logged")
        runner.run(
            spec, jobs=1, cache=tmp_path / "cache", run_dir=tmp_path / "run"
        )
        lines = [
            json.loads(line)
            for line in (tmp_path / "run" / "campaign.jsonl")
            .read_text().splitlines()
        ]
        assert lines[0]["type"] == "campaign"
        assert lines[0]["n_jobs"] == 2
        job_lines = [rec for rec in lines if rec["type"] == "job"]
        assert {rec["index"] for rec in job_lines} == {0, 1}
        assert all(rec["summary"]["area"] > 0 for rec in job_lines)
        state = load_run(tmp_path / "run")
        assert state.spec == spec

    def test_torn_tail_line_is_ignored(self, tmp_path):
        spec = small_spec(name="torn")
        runner.run(
            spec, jobs=1, cache=tmp_path / "cache", run_dir=tmp_path / "run"
        )
        path = tmp_path / "run" / "campaign.jsonl"
        path.write_text(path.read_text() + '{"type": "job", "ind')
        state = load_run(tmp_path / "run")
        assert state.counts() == {"ok": 2}


class TestStatsScope:
    @pytest.fixture(autouse=True)
    def _clean_totals(self):
        reset_solver_statistics()
        yield
        reset_solver_statistics()

    def test_scope_isolates_and_restores(self):
        record_stats(SolveStats(backend="outer", augmentations=3))
        with stats_scope() as scoped:
            record_stats(SolveStats(backend="inner", augmentations=5))
        assert set(scoped) == {"inner"}
        assert scoped["inner"].augmentations == 5
        totals = solver_statistics()
        assert totals["outer"].augmentations == 3
        assert totals["inner"].augmentations == 5

    def test_nested_scopes(self):
        with stats_scope() as outer:
            record_stats(SolveStats(backend="a", augmentations=1))
            with stats_scope() as inner:
                record_stats(SolveStats(backend="a", augmentations=9))
            assert inner["a"].augmentations == 9
        assert outer["a"].augmentations == 10


class TestCampaignCli:
    def test_run_status_resume(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        code = main([
            "campaign", "run", "--circuits", "c17", "--specs", "0.6,0.8",
            "--jobs", "2", "--run-dir", "run", "--cache-dir", "cache",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "c17@0.6" in out and "0/2 cached" in out

        code = main([
            "campaign", "run", "--circuits", "c17", "--specs", "0.6,0.8",
            "--run-dir", "run2", "--cache-dir", "cache", "--json",
        ])
        assert code == 0
        digest = json.loads(capsys.readouterr().out)
        assert digest["n_cached"] == 2
        assert digest["counts"] == {"ok": 2}

        assert main(["campaign", "status", "run", "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["done"] == status["n_jobs"] == 2

        assert main([
            "campaign", "resume", "run", "--cache-dir", "cache",
        ]) == 0
        assert "2/2 cached" in capsys.readouterr().out

    def test_bad_specs_exit_2(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        code = main([
            "campaign", "run", "--circuits", "c17", "--specs", "0,-1",
        ])
        assert code == 2
        assert "positive" in capsys.readouterr().err

    def test_malformed_specs_exit_2(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        code = main([
            "campaign", "run", "--circuits", "c17", "--specs", "0.5,oops",
        ])
        assert code == 2
        assert "comma-separated numbers" in capsys.readouterr().err

    def test_missing_bench_fails_in_isolation(self, tmp_path, capsys,
                                              monkeypatch):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        # With the cache enabled (the default), the unreadable netlist
        # must become a failed job — not a parent-process traceback.
        code = main([
            "campaign", "run", "--circuits", "c17,missing.bench",
            "--specs", "0.8", "--run-dir", "run",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "failed" in out and "missing.bench" in out

    def test_table1_spec_is_the_tier_preset(self):
        from repro.experiments.table1 import campaign_spec

        assert campaign_spec("smoke") == tier_preset("smoke")
        assert campaign_spec("paper", "ssp") == tier_preset(
            "paper", flow_backend="ssp"
        )

    def test_figure7_panel_replays_from_cache(self, tmp_path, monkeypatch):
        from repro.experiments.figure7 import run_panel

        first = run_panel("c17", [0.7, 0.9], cache=tmp_path / "cache")
        monkeypatch.setitem(
            _EXECUTORS, "sizing",
            lambda job: (_ for _ in ()).throw(
                AssertionError("cached point must not re-run")
            ),
        )
        again = run_panel("c17", [0.7, 0.9], cache=tmp_path / "cache")
        assert [p.minflo_area_ratio for p in again.points] == [
            p.minflo_area_ratio for p in first.points
        ]

    def test_status_missing_dir_exit_2(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        assert main(["campaign", "status", "nowhere"]) == 2
        assert "no campaign log" in capsys.readouterr().err

    def test_status_and_resume_empty_log_exit_2(self, tmp_path, capsys,
                                                monkeypatch):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        (tmp_path / "run").mkdir()
        (tmp_path / "run" / "campaign.jsonl").write_text("")
        assert main(["campaign", "status", "run"]) == 2
        assert "no campaign header" in capsys.readouterr().err
        assert main(["campaign", "resume", "run"]) == 2
        assert "no campaign header" in capsys.readouterr().err

    def test_status_and_resume_truncated_header_exit_2(self, tmp_path,
                                                       capsys, monkeypatch):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        (tmp_path / "run").mkdir()
        # A header record missing n_jobs/labels (e.g. hand-edited or
        # written by a dead version) must be a diagnostic, not a
        # KeyError traceback.
        (tmp_path / "run" / "campaign.jsonl").write_text(
            json.dumps({"type": "campaign", "name": "x"}) + "\n"
        )
        assert main(["campaign", "status", "run"]) == 2
        assert "malformed campaign header" in capsys.readouterr().err
        assert main(["campaign", "resume", "run"]) == 2
        assert "malformed campaign header" in capsys.readouterr().err

    def test_load_run_malformed_job_records_are_skipped(self, tmp_path):
        spec = small_spec(name="glitch")
        runner.run(
            spec, jobs=1, cache=tmp_path / "cache", run_dir=tmp_path / "run"
        )
        path = tmp_path / "run" / "campaign.jsonl"
        path.write_text(
            path.read_text()
            + json.dumps({"type": "job", "status": "ok"}) + "\n"
            + json.dumps({"type": "job", "index": "NaN"}) + "\n"
        )
        state = load_run(tmp_path / "run")
        assert state.counts() == {"ok": 2}
