"""Differential tests for the warm-start corpus (PR 9 tentpole).

The contract under test is absolute: with the corpus on, every job's
payload is byte-identical (modulo volatile wall-clock keys) to a cold
run — seeding only changes how much work the solver does, never what
it returns.  The suite drives the real executors end to end:

* seeded-vs-cold parity over drifting-spec sweeps (sizing and W-phase,
  plus a tier-preset circuit at its paper spec),
* forced divergence: a poisoned donor trajectory (valid checksum,
  wrong bumps) must fall back to a bitwise cold result,
* corrupt / version-mismatched warm records are quarantined like PR 6
  cache entries — stripped, counted, payload untouched,
* parallel ``jobs=N`` equals serial byte-for-byte with warm on.
"""

import json

import pytest

from repro.runner.cache import ResultCache
from repro.runner.corpus import (
    WarmCorpus,
    WarmSession,
    record_checksum,
)
from repro.runner.executor import run_campaign, run_one
from repro.runner.spec import Job, tier_preset
from repro.sizing.serialize import canonical_json, comparable_payload
from repro.tech import default_technology


def _comparable(outcome) -> str:
    assert outcome.status in ("ok", "infeasible"), outcome.error
    return canonical_json(comparable_payload(outcome.payload))


def _rewrite_warm(cache: ResultCache, key: str, record) -> None:
    """Replace the warm record of ``key`` without touching the payload
    (and without the checksum hygiene of the normal write path)."""
    entry = cache.backend.get(key)
    entry["warm"] = record
    cache.backend.put(key, entry)


# Drifting-target sweeps: earlier jobs populate the corpus the later
# ones retrieve from.  Specs stay < 1.0 — a spec >= 1.0 is met at
# minimum sizes with zero iterations, which would test nothing.
_SWEEPS = {
    "sizing-drift": [Job("rca:8", s) for s in (0.95, 0.90, 0.85)],
    "sizing-mixed": [
        Job("rca:6", 0.92),
        Job("rca:8", 0.92),
        Job("rca:8", 0.88),
    ],
    # W-phase seeding needs a dominated-budget donor: budgets shrink
    # with the spec, so a descending sweep makes every earlier solution
    # a legal seed for every later job.
    "wphase-drift": [Job("rca:8", s, kind="wphase") for s in (0.95, 0.9, 0.8)],
}


class TestSeededColdParity:
    @pytest.mark.parametrize("sweep", sorted(_SWEEPS))
    def test_drifting_sweep_matches_cold(self, tmp_path, sweep):
        jobs = _SWEEPS[sweep]
        cold = [run_one(job, cache=None) for job in jobs]
        cache = ResultCache(tmp_path / "corpus")
        spec = f"disk:{tmp_path / 'corpus'}"
        warm = [run_one(job, cache, warm=spec) for job in jobs]
        for cold_out, warm_out in zip(cold, warm):
            assert _comparable(warm_out) == _comparable(cold_out)
        # The sweep genuinely exercised seeding (not vacuous parity):
        # the first job is a cold miss, every later one finds a donor.
        assert not warm[0].warm_hit
        assert all(out.warm_hit for out in warm[1:])
        assert any(out.warm_seeded for out in warm[1:])

    @pytest.mark.slow
    def test_tier_preset_circuit_matches_cold(self, tmp_path):
        """A real Table-1 circuit at its paper delay spec: re-running a
        drifted target against the first run's corpus record stays
        bitwise cold."""
        base = tier_preset("smoke").jobs()[0]
        jobs = [base, Job(base.circuit, base.delay_spec * 0.95)]
        cold = [run_one(job, cache=None) for job in jobs]
        cache = ResultCache(tmp_path / "corpus")
        warm = [
            run_one(job, cache, warm=f"disk:{tmp_path / 'corpus'}")
            for job in jobs
        ]
        for cold_out, warm_out in zip(cold, warm):
            assert _comparable(warm_out) == _comparable(cold_out)
        assert warm[1].warm_hit


class TestDivergenceFallback:
    def test_poisoned_trajectory_falls_back_to_cold(self, tmp_path):
        donor = Job("rca:8", 0.92)
        target = Job("rca:8", 0.88)
        cache = ResultCache(tmp_path / "corpus")
        spec = f"disk:{tmp_path / 'corpus'}"
        donor_out = run_one(donor, cache, warm=spec)
        record = cache.get_warm(donor_out.key)
        assert record is not None and record["data"]["bumps"]
        # Redirect the first bump to a different vertex but recompute
        # the checksum: the record passes verification and reaches the
        # replay monitor, which must catch the diverging delay trace.
        first = record["data"]["bumps"][0]
        record["data"]["bumps"][0] = [1 if first[0] == 0 else 0]
        record["checksum"] = record_checksum(record)
        _rewrite_warm(cache, donor_out.key, record)

        cold = run_one(target, cache=None)
        warm = run_one(target, cache, warm=spec)
        assert warm.warm_hit and warm.warm_fallback and not warm.warm_seeded
        assert _comparable(warm) == _comparable(cold)

    def test_undominated_wphase_donor_falls_back_to_cold(self, tmp_path):
        """A donor whose budgets do NOT dominate the new job's fails the
        seeding gate (no certificate) — cold result, fallback flagged."""
        cache = ResultCache(tmp_path / "corpus")
        spec = f"disk:{tmp_path / 'corpus'}"
        run_one(Job("rca:8", 0.85, kind="wphase"), cache, warm=spec)
        target = Job("rca:8", 0.95, kind="wphase")  # looser: donor below
        cold = run_one(target, cache=None)
        warm = run_one(target, cache, warm=spec)
        assert warm.warm_hit and warm.warm_fallback and not warm.warm_seeded
        assert _comparable(warm) == _comparable(cold)


class TestQuarantine:
    def _seed_corpus(self, cache, spec):
        """Two donor entries with staged warm records; returns keys."""
        outs = [
            run_one(Job("rca:6", 0.92), cache, warm=spec),
            run_one(Job("rca:6", 0.88), cache, warm=spec),
        ]
        return [out.key for out in outs]

    def _query_for(self, job: Job) -> dict:
        from dataclasses import asdict

        from repro.runner.executor import _wphase_context
        from repro.sizing import TilosOptions

        _, dag, _ = _wphase_context(job)
        return WarmSession(None)._build_query(
            "sizing",
            dag=dag,
            tech=default_technology(),
            mode=job.mode,
            options=asdict(TilosOptions()),
            delay_spec=job.delay_spec,
            target=1.0,
        )

    def test_corrupt_rows_quarantined_payload_survives(self, tmp_path):
        cache = ResultCache(tmp_path / "corpus")
        spec = f"disk:{tmp_path / 'corpus'}"
        k1, k2 = self._seed_corpus(cache, spec)
        payloads = {k: cache.get(k) for k in (k1, k2)}

        # k1: version-mismatched row — rejected at index time.
        r1 = cache.get_warm(k1)
        r1["version"] = 99
        _rewrite_warm(cache, k1, r1)
        # k2: tampered data under a stale checksum — passes the cheap
        # index-time validation, fails full verification at fetch time.
        r2 = cache.get_warm(k2)
        r2["data"]["trace"][0] += 1.0
        _rewrite_warm(cache, k2, r2)

        corpus = WarmCorpus(ResultCache(tmp_path / "corpus"))
        record, info = corpus.probe(self._query_for(Job("rca:6", 0.9)))
        assert record is None
        assert info["quarantined"] == 2
        # Quarantine strips the warm record but never the payload —
        # exactly how PR 6 treats corrupt cache entries.
        for key in (k1, k2):
            assert cache.get_warm(key) is None
            assert cache.get(key) == payloads[key]

    def test_non_dict_warm_record_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "corpus")
        spec = f"disk:{tmp_path / 'corpus'}"
        (k1, _) = self._seed_corpus(cache, spec)
        _rewrite_warm(cache, k1, json.loads('["not", "a", "record"]'))
        corpus = WarmCorpus(ResultCache(tmp_path / "corpus"))
        record, info = corpus.probe(self._query_for(Job("rca:6", 0.9)))
        # The intact sibling record still wins the probe.
        assert record is not None
        assert info["quarantined"] >= 0  # non-dict warm reads as absent
        assert cache.get(k1) is not None


class TestParallelSerialParity:
    @pytest.mark.slow
    def test_parallel_equals_serial_with_warm_on(self, tmp_path):
        jobs = [
            Job("rca:6", 0.95),
            Job("rca:6", 0.90),
            Job("rca:8", 0.92, kind="wphase"),
            Job("rca:8", 0.85, kind="wphase"),
        ]
        serial_cache = ResultCache(tmp_path / "serial")
        serial = run_campaign(
            jobs,
            jobs=1,
            cache=serial_cache,
            warm_corpus=f"disk:{tmp_path / 'serial'}",
        )
        parallel_cache = ResultCache(tmp_path / "parallel")
        parallel = run_campaign(
            jobs,
            jobs=2,
            cache=parallel_cache,
            warm_corpus=f"disk:{tmp_path / 'parallel'}",
        )
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert _comparable(a) == _comparable(b)
        # Both runs cached identical entries under identical keys.
        assert sorted(serial_cache.scan()) == sorted(parallel_cache.scan())
        for key in serial_cache.scan():
            assert canonical_json(comparable_payload(serial_cache.get(key))) \
                == canonical_json(comparable_payload(parallel_cache.get(key)))
