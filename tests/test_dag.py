"""Tests for DAG construction in both sizing modes (paper figs. 1, 2, 5)."""

import numpy as np
import pytest

from repro.circuit import CircuitBuilder
from repro.dag import build_sizing_dag, transform_dag
from repro.errors import NetlistError
from repro.generators import ripple_carry_adder


class TestGateMode:
    def test_vertex_per_gate(self, c17, c17_gate_dag):
        assert c17_gate_dag.n == c17.n_gates
        assert c17_gate_dag.mode == "gate"

    def test_edges_follow_wires(self, c17, c17_gate_dag):
        labels = {v.label: v.index for v in c17_gate_dag.vertices}
        # gate driving net 11 feeds gates reading net 11 (g2 and g3).
        driver = next(g for g in c17.gates if g.output == "11")
        readers = [g.name for g, _ in c17.loads_of("11")]
        for reader in readers:
            edge = (labels[driver.name], labels[reader])
            assert edge in c17_gate_dag.edges

    def test_po_vertices(self, c17, c17_gate_dag):
        po_labels = {
            c17_gate_dag.vertices[i].label for i in c17_gate_dag.po_vertices
        }
        expected = {
            c17.driver_of(net).name for net in c17.outputs
        }
        assert po_labels == expected

    def test_coefficients_nonnegative(self, c17_gate_dag):
        a = c17_gate_dag.model.a_matrix
        assert (a.data >= 0).all()
        assert (c17_gate_dag.model.b >= 0).all()
        assert (c17_gate_dag.model.intrinsic >= 0).all()

    def test_po_load_in_b(self, c17_gate_dag, tech):
        # PO gates carry the c_load term; a PO gate's b exceeds that of
        # an identical internal gate.
        po = set(c17_gate_dag.po_vertices)
        b = c17_gate_dag.model.b
        internal = [i for i in range(c17_gate_dag.n) if i not in po]
        assert min(b[i] for i in po) > max(b[i] for i in internal)

    def test_delay_positive_and_decreasing_in_own_size(self, c17_gate_dag):
        x = c17_gate_dag.min_sizes()
        base = c17_gate_dag.delays(x)
        assert (base > 0).all()
        grown = x.copy()
        grown[0] *= 2
        faster = c17_gate_dag.delays(grown)
        assert faster[0] < base[0]

    def test_delay_increasing_in_fanout_size(self, c17_gate_dag):
        x = c17_gate_dag.min_sizes()
        base = c17_gate_dag.delays(x)
        # growing a fanout of vertex u increases u's delay
        u, v = c17_gate_dag.edges[0]
        grown = x.copy()
        grown[v] *= 2
        slower = c17_gate_dag.delays(grown)
        assert slower[u] > base[u]

    def test_matrix_identity_d_minus_a(self, c17_gate_dag):
        """(D - A) X = B at any sizing (paper equation (6))."""
        rng = np.random.default_rng(0)
        dag = c17_gate_dag
        x = rng.uniform(1, 8, size=dag.n)
        load_delay = dag.model.load_delays(x)
        lhs = load_delay * x - dag.model.a_matrix @ x
        assert lhs == pytest.approx(dag.model.b)

    def test_area_uses_cell_weights(self, c17_gate_dag):
        x = c17_gate_dag.min_sizes()
        assert c17_gate_dag.area(x) == pytest.approx(
            float(c17_gate_dag.area_weight.sum())
        )

    def test_rejects_empty_circuit(self, tech):
        builder = CircuitBuilder("empty")
        builder.input("a")
        builder.circuit.mark_output("a")
        with pytest.raises(NetlistError):
            build_sizing_dag(builder.build(), tech, mode="gate")

    def test_unknown_mode(self, c17, tech):
        with pytest.raises(NetlistError):
            build_sizing_dag(c17, tech, mode="device")


class TestTransistorMode:
    def test_vertex_per_device(self, c17, c17_transistor_dag):
        assert c17_transistor_dag.n == c17.device_count()
        kinds = {v.kind for v in c17_transistor_dag.vertices}
        assert kinds == {"nmos", "pmos"}

    def test_blocks_group_gates(self, c17, c17_transistor_dag):
        assert len(c17_transistor_dag.blocks) == c17.n_gates
        for block in c17_transistor_dag.blocks:
            gates = {c17_transistor_dag.vertices[i].gate for i in block}
            assert len(gates) == 1

    def test_requires_primitive_cells(self, tech):
        circuit = ripple_carry_adder(2, style="macro")
        with pytest.raises(NetlistError, match="macro"):
            build_sizing_dag(circuit, tech, mode="transistor")

    def test_nand3_dag_shape(self, tech):
        """Paper figure 1: NAND3 pulldown chain + parallel pullups."""
        builder = CircuitBuilder("one")
        a, b, c = builder.inputs(["a", "b", "c"])
        out = builder.gate("NAND3", [a, b, c])
        builder.output(out)
        dag = build_sizing_dag(builder.build(), tech, mode="transistor")
        assert dag.n == 6
        nmos = [v.index for v in dag.vertices if v.kind == "nmos"]
        pmos = [v.index for v in dag.vertices if v.kind == "pmos"]
        # NMOS chain has 2 internal edges; PMOS parallel has none.
        nmos_edges = [
            e for e in dag.edges if e[0] in nmos and e[1] in nmos
        ]
        pmos_edges = [
            e for e in dag.edges if e[0] in pmos and e[1] in pmos
        ]
        assert len(nmos_edges) == 2
        assert len(pmos_edges) == 0
        # All six leaves face the (only) output: PO set is NMOS bottom
        # of stack + all three PMOS devices.
        assert len(dag.po_vertices) == 4

    def test_nand3_elmore_matches_equation_3(self, tech):
        """The pulldown path delay equals the hand-derived equation (3)."""
        builder = CircuitBuilder("one")
        a, b, c = builder.inputs(["a", "b", "c"])
        out = builder.gate("NAND3", [a, b, c])
        builder.output(out)
        dag = build_sizing_dag(builder.build(), tech, mode="transistor")
        x = np.full(6, 2.0)
        delays = dag.delays(x)
        nmos = [v for v in dag.vertices if v.kind == "nmos"]
        # Vertex order inside the stack: in0 at output, in2 at rail.
        by_pin = {v.label.split(":")[1]: v.index for v in nmos}
        A = tech.r_nmos
        B, Cs = tech.c_drain_n, tech.c_source_n
        Bp = tech.c_drain_p
        CL = tech.c_load + tech.c_wire  # wire branch to the PO
        x0 = x1 = x2 = 2.0
        xp = 2.0
        # Output node: drain(N_top) + 3 PMOS drains + CL.
        out_cap = B * x0 + 3 * Bp * xp + CL
        n1_cap = Cs * x0 + B * x1 + tech.c_internal
        n2_cap = Cs * x1 + B * x2 + tech.c_internal
        want_top = (A / x0) * out_cap
        want_mid = (A / x1) * (out_cap + n1_cap)
        want_bot = (A / x2) * (out_cap + n1_cap + n2_cap)
        assert delays[by_pin["in0"]] == pytest.approx(want_top)
        assert delays[by_pin["in1"]] == pytest.approx(want_mid)
        assert delays[by_pin["in2"]] == pytest.approx(want_bot)

    def test_intergate_edges_cross_polarity(self, c17_transistor_dag):
        dag = c17_transistor_dag
        for u, v in dag.edges:
            vu, vv = dag.vertices[u], dag.vertices[v]
            if vu.gate != vv.gate:
                assert vu.kind != vv.kind, (vu.label, vv.label)

    def test_two_nands_in_series_figure2(self, tech):
        """Paper figure 2: leaf-of-PMOS -> root-of-NMOS edges exist."""
        builder = CircuitBuilder("two")
        nets = builder.inputs(["a", "b", "c", "d", "e"])
        first = builder.gate("NAND3", nets[:3])
        second = builder.gate("NAND3", [first, nets[3], nets[4]])
        builder.output(second)
        dag = build_sizing_dag(builder.build(), tech, mode="transistor")
        cross = [
            (dag.vertices[u], dag.vertices[v])
            for u, v in dag.edges
            if dag.vertices[u].gate != dag.vertices[v].gate
        ]
        assert cross, "expected inter-gate edges"
        # PMOS leaves of gate 1 must reach the NMOS root of gate 2.
        assert any(
            s.kind == "pmos" and t.kind == "nmos" for s, t in cross
        )
        assert any(
            s.kind == "nmos" and t.kind == "pmos" for s, t in cross
        )

    def test_delays_positive(self, c17_transistor_dag):
        delays = c17_transistor_dag.delays(c17_transistor_dag.min_sizes())
        assert (delays > 0).all()


class TestTransform:
    def test_node_numbering(self, c17_gate_dag):
        transformed = transform_dag(c17_gate_dag)
        n = c17_gate_dag.n
        assert transformed.n_nodes == 2 * n + 1
        assert transformed.dummy(3) == n + 3
        assert transformed.is_dummy(n)
        assert not transformed.is_dummy(n - 1)

    def test_arc_inventory(self, c17_gate_dag):
        transformed = transform_dag(c17_gate_dag)
        kinds = {}
        for arc in transformed.arcs:
            kinds[arc.kind] = kinds.get(arc.kind, 0) + 1
        assert kinds["delay"] == c17_gate_dag.n
        assert kinds["wire"] == c17_gate_dag.n_edges
        assert kinds["po"] == len(c17_gate_dag.po_vertices)

    def test_wire_arcs_rerooted_at_dummy(self, c17_gate_dag):
        transformed = transform_dag(c17_gate_dag)
        n = c17_gate_dag.n
        for arc in transformed.arcs:
            if arc.kind == "wire":
                assert n <= arc.src < 2 * n
                assert arc.dst < n

    def test_pinned_nodes(self, c17_gate_dag):
        transformed = transform_dag(c17_gate_dag)
        assert transformed.output_sink in transformed.pinned
        for source in c17_gate_dag.sources:
            assert source in transformed.pinned
        # No dummy is pinned.
        assert all(
            not transformed.is_dummy(node) for node in transformed.pinned
        )
