"""Tests for the sizing service (repro.service): HTTP API, cache, log."""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import runner
from repro.errors import ServiceError
from repro.runner import CampaignSpec, Job, execute_job
from repro.runner.executor import _EXECUTORS
from repro.service import ServiceClient, SizingService, make_server
from repro.service.jobs import JobStore
from repro.sizing.serialize import canonical_json

INLINE_BENCH = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n"


class _LiveService:
    """One in-process service + HTTP server + client, torn down cleanly."""

    def __init__(self, tmp_path, jobs=1, cache="cache", run_dir="run",
                 timeout=None):
        self.service = SizingService(
            jobs=jobs,
            cache=None if cache is None else tmp_path / cache,
            run_dir=None if run_dir is None else tmp_path / run_dir,
            timeout=timeout,
        )
        self.server = make_server(self.service, quiet=True)
        host, port = self.server.server_address[:2]
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()
        self.client = ServiceClient(f"http://{host}:{port}")

    def stop(self):
        self.server.shutdown()
        self.server.server_close()
        self.service.close()


@pytest.fixture()
def live(tmp_path):
    box = _LiveService(tmp_path)
    yield box
    box.stop()


class TestSizeEndpoint:
    def test_sync_result_matches_direct_execution(self, live):
        reply = live.client.size(circuit="c17", delay_spec=0.6)
        assert reply["status"] == "ok" and not reply["cached"]
        _, payload = execute_job(Job(circuit="c17", delay_spec=0.6))
        assert reply["payload"]["result"]["x"] == payload["result"]["x"]
        assert reply["payload"]["result"]["area"] == (
            payload["result"]["area"]
        )

    def test_repeat_is_byte_identical_cache_hit(self, live):
        first = live.client.size(circuit="c17", delay_spec=0.7)
        second = live.client.size(circuit="c17", delay_spec=0.7)
        assert second["cached"] and not first["cached"]
        assert canonical_json(second["payload"]) == (
            canonical_json(first["payload"])
        )

    def test_cache_hit_skips_sizing(self, live, monkeypatch):
        live.client.size(circuit="c17", delay_spec=0.8)

        def boom(job):
            raise AssertionError("cache hit must not re-run the job")

        monkeypatch.setitem(_EXECUTORS, "sizing", boom)
        reply = live.client.size(circuit="c17", delay_spec=0.8)
        assert reply["status"] == "ok" and reply["cached"]

    def test_service_cache_is_the_campaign_cache(self, live, tmp_path):
        """A service answer replays for free on the CLI campaign path."""
        live.client.size(circuit="c17", delay_spec=0.6)
        live.client.size(circuit="c17", delay_spec=0.8)
        spec = CampaignSpec(
            name="xcheck", circuits=("c17",), delay_specs=(0.6, 0.8)
        )
        result = runner.run(spec, jobs=1, cache=tmp_path / "cache")
        assert result.n_cached == len(result.outcomes) == 2

    def test_async_job_lifecycle(self, live):
        ticket = live.client.size(circuit="c17", delay_spec=0.9, wait=False)
        assert ticket["status"] in ("queued", "running")
        done = live.client.wait_for(ticket["id"], timeout=60)
        assert done["status"] == "ok"
        assert done["payload"]["result"]["area"] > 0
        assert live.client.job(ticket["id"])["status"] == "ok"

    def test_inline_bench_roundtrip_and_cache(self, live):
        first = live.client.size(bench=INLINE_BENCH, delay_spec=0.7)
        assert first["status"] == "ok" and not first["cached"]
        again = live.client.size(bench=INLINE_BENCH, delay_spec=0.7)
        assert again["cached"]
        assert again["payload"] == first["payload"]


class TestTransport:
    def test_keepalive_survives_error_with_unread_body(self, live):
        """A POST body left unread by an error path must not corrupt
        the next request on the same persistent connection."""
        import http.client

        host, port = live.server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            # 405 route that never reads the body it was sent.
            conn.request(
                "POST", "/v1/circuits", body=json.dumps({"circuit": "c17"}),
                headers={"Content-Type": "application/json"},
            )
            error = conn.getresponse()
            assert error.status == 405
            error.read()
            # Same connection: must parse as a fresh request, not as
            # the stale body bytes.
            conn.request("GET", "/v1/healthz")
            follow_up = conn.getresponse()
            assert follow_up.status == 200
            assert json.loads(follow_up.read())["status"] == "ok"
        finally:
            conn.close()

    def test_timeout_forces_enforcing_pool(self, tmp_path):
        """jobs=1 with a timeout must not use the thread pool, where
        the SIGALRM budget would be silently disarmed."""
        from concurrent.futures import ThreadPoolExecutor as TPE

        service = SizingService(
            jobs=1, cache=None, run_dir=None, timeout=30.0
        )
        try:
            assert not isinstance(service._pool, TPE)
        finally:
            service.close()

    def test_ephemeral_netlist_spool_is_removed_on_close(self):
        service = SizingService(jobs=1, cache=None, run_dir=None)
        spool = service._netlist_dir
        service.size_sync({"bench": INLINE_BENCH, "delay_spec": 0.8})
        assert spool.exists()
        service.close()
        assert not spool.exists()


@pytest.mark.slow
class TestConcurrency:
    @pytest.fixture()
    def pooled(self, tmp_path):
        box = _LiveService(tmp_path, jobs=2)
        yield box
        box.stop()

    def test_concurrent_requests_match_cli_path(self, pooled):
        specs = [0.6, 0.7, 0.8, 0.9]
        with ThreadPoolExecutor(max_workers=4) as pool:
            replies = list(pool.map(
                lambda s: pooled.client.size(circuit="c17", delay_spec=s),
                specs,
            ))
        assert [r["status"] for r in replies] == ["ok"] * 4
        assert not any(r["cached"] for r in replies)
        for spec, reply in zip(specs, replies):
            _, payload = execute_job(Job(circuit="c17", delay_spec=spec))
            assert reply["payload"]["result"]["x"] == payload["result"]["x"]

        # The identical burst again: all hits, byte-identical payloads.
        with ThreadPoolExecutor(max_workers=4) as pool:
            again = list(pool.map(
                lambda s: pooled.client.size(circuit="c17", delay_spec=s),
                specs,
            ))
        assert all(r["cached"] for r in again)
        assert [canonical_json(r["payload"]) for r in again] == [
            canonical_json(r["payload"]) for r in replies
        ]


class TestRestart:
    def test_job_log_survives_restart(self, tmp_path):
        box = _LiveService(tmp_path)
        reply = box.client.size(circuit="c17", delay_spec=0.6)
        job_id = reply["id"]
        box.stop()

        reborn = _LiveService(tmp_path)
        try:
            replay = reborn.client.job(job_id)
            assert replay["status"] == "ok"
            assert replay["summary"]["area"] == reply["summary"]["area"]
            # Full payload re-served from the content-addressed cache.
            assert replay["payload"]["result"]["x"] == (
                reply["payload"]["result"]["x"]
            )
            # Id allocation continues past replayed history.
            fresh = reborn.client.size(circuit="c17", delay_spec=0.8)
            assert fresh["id"] != job_id
        finally:
            reborn.stop()

    def test_inflight_job_comes_back_lost_then_upgrades(self, tmp_path):
        job = Job(circuit="c17", delay_spec=0.6)
        store = JobStore(tmp_path / "run")
        key = runner.campaign_keys([job], runner.ResultCache(
            tmp_path / "cache"
        ))[0]
        record = store.create(job, key)
        # No finish record: the service "died" mid-flight.

        service = SizingService(
            jobs=1, cache=tmp_path / "cache", run_dir=tmp_path / "run"
        )
        try:
            found, payload = service.get_job(record.id)
            assert found.status == "lost" and payload is None
            # A cache entry appears (e.g. the worker won the race before
            # the crash, or another replica computed it): lost upgrades.
            outcome = runner.run_one(job, cache=service.cache)
            assert outcome.status == "ok"
            found, payload = service.get_job(record.id)
            assert found.status == "ok" and found.cached
            assert payload is not None
        finally:
            service.close()


class TestErrors:
    @pytest.mark.parametrize("body, fragment", [
        ({}, "exactly one of"),
        ({"circuit": "c17", "bench": INLINE_BENCH}, "exactly one of"),
        ({"circuit": "c17", "delay_spec": -0.5}, "positive"),
        ({"circuit": "c17", "delay_spec": "fast"}, "positive"),
        ({"circuit": "c17", "mode": "quantum"}, "mode"),
        ({"circuit": "c17", "flow_backend": "gurobi"}, "unknown flow"),
        ({"circuit": "c17", "options": {"not_a_knob": 1}},
         "unknown MinfloOptions"),
        ({"circuit": "c17", "dela_spec": 0.5}, "unknown request field"),
        ({"circuit": "no-such-circuit"}, "cannot resolve circuit"),
        ({"bench": "y = FROB(a)\n"}, "invalid 'bench'"),
    ])
    def test_malformed_bodies_get_400(self, live, body, fragment):
        with pytest.raises(ServiceError) as err:
            live.client._request("POST", "/v1/size", body)
        assert err.value.status == 400
        assert fragment in str(err.value)

    def test_invalid_json_gets_400(self, live):
        import urllib.request

        request = urllib.request.Request(
            live.client.base_url + "/v1/size",
            data=b"{ not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400
        detail = json.loads(err.value.read())
        assert detail["error"]["status"] == 400
        assert "not valid JSON" in detail["error"]["message"]

    def test_unknown_job_gets_404(self, live):
        with pytest.raises(ServiceError) as err:
            live.client.job("j999999")
        assert err.value.status == 404

    def test_unknown_endpoint_gets_404(self, live):
        with pytest.raises(ServiceError) as err:
            live.client._request("GET", "/v1/frobnicate")
        assert err.value.status == 404

    def test_wrong_method_gets_405(self, live):
        with pytest.raises(ServiceError) as err:
            live.client._request("GET", "/v1/size")
        assert err.value.status == 405


class TestDiscovery:
    def test_healthz(self, live):
        assert live.client.healthz()["status"] == "ok"

    def test_circuits_lists_the_suite(self, live):
        from repro.generators.iscas import SUITE

        body = live.client.circuits()
        assert [c["name"] for c in body["circuits"]] == [
            spec.name for spec in SUITE
        ]

    def test_backends_reflect_the_registry(self, live):
        from repro.flow.registry import registered_backends

        body = live.client.backends()
        assert [b["name"] for b in body["backends"]] == [
            b.name for b in registered_backends()
        ]
        ssp = next(b for b in body["backends"] if b["name"] == "ssp")
        assert ssp["capabilities"]["supports_warm_start"] is True

    def test_stats_account_for_work(self, live):
        live.client.size(circuit="c17", delay_spec=0.6)
        live.client.size(circuit="c17", delay_spec=0.6)
        stats = live.client.stats()
        assert stats["jobs"].get("ok") == 2
        assert stats["cache_hits"] == 1 and stats["executed"] == 1
        assert sum(s["solves"] for s in stats["flow"].values()) > 0
        assert stats["executor"]["kind"] == "thread"
