"""Tests for the ISCAS .bench reader/writer."""

import random

import pytest

from repro.circuit import dumps_bench, load_bench, loads_bench, save_bench
from repro.errors import BenchFormatError
from repro.generators import build_circuit, random_logic


class TestReader:
    def test_c17_roundtrip_semantics(self, c17):
        text = dumps_bench(c17)
        again = loads_bench(text, "c17rt")
        assert again.n_gates == c17.n_gates
        assert set(again.inputs) == set(c17.inputs)
        assert set(again.outputs) == set(c17.outputs)
        rng = random.Random(7)
        for _ in range(20):
            ins = {net: rng.random() < 0.5 for net in c17.inputs}
            got_a = {net: c17.evaluate(ins)[net] for net in c17.outputs}
            got_b = {net: again.evaluate(ins)[net] for net in again.outputs}
            assert got_a == got_b

    def test_comments_and_blank_lines(self):
        text = """
        # a comment
        INPUT(a)

        OUTPUT(y)   # trailing comment
        y = NOT(a)
        """
        circuit = loads_bench(text)
        assert circuit.n_gates == 1

    def test_buff_alias(self):
        circuit = loads_bench("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n")
        assert circuit.gates[0].cell == "BUF"

    def test_wide_nand_decomposed(self):
        terms = ", ".join(f"i{k}" for k in range(7))
        header = "\n".join(f"INPUT(i{k})" for k in range(7))
        circuit = loads_bench(f"{header}\nOUTPUT(y)\ny = NAND({terms})\n")
        # Function preserved even though decomposed into a tree.
        all_true = {f"i{k}": True for k in range(7)}
        assert circuit.evaluate(all_true)["y"] is False
        one_false = dict(all_true, i3=False)
        assert circuit.evaluate(one_false)["y"] is True

    def test_xor_arity_enforced(self):
        with pytest.raises(BenchFormatError, match="expects 2"):
            loads_bench("INPUT(a)\nOUTPUT(y)\ny = XOR(a)\n")

    def test_dff_rejected(self):
        with pytest.raises(BenchFormatError, match="DFF"):
            loads_bench("INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n")

    def test_unknown_function(self):
        with pytest.raises(BenchFormatError, match="unknown function"):
            loads_bench("INPUT(a)\nOUTPUT(y)\ny = MAJ3(a, a, a)\n")

    def test_garbage_line(self):
        with pytest.raises(BenchFormatError, match="cannot parse"):
            loads_bench("INPUT(a)\nthis is not bench\n")

    def test_undriven_output(self):
        with pytest.raises(BenchFormatError):
            loads_bench("INPUT(a)\nOUTPUT(ghost)\ny = NOT(a)\n")


class TestWriter:
    def test_file_roundtrip(self, tmp_path, c17):
        path = save_bench(c17, tmp_path / "c17.bench")
        again = load_bench(path)
        assert again.name == "c17"
        assert again.n_gates == c17.n_gates

    def test_extension_cells_roundtrip(self):
        source = random_logic(60, seed=11)  # contains AOI/OAI cells
        text = dumps_bench(source)
        again = loads_bench(text, "rt")
        assert again.n_gates == source.n_gates
        rng = random.Random(3)
        for _ in range(10):
            ins = {net: rng.random() < 0.5 for net in source.inputs}
            for out in source.outputs:
                assert source.evaluate(ins)[out] == again.evaluate(ins)[out]

    def test_macro_circuit_roundtrip(self):
        source = build_circuit("c499eq")  # XOR2/AND/NOT macro cells
        again = loads_bench(dumps_bench(source), "rt")
        rng = random.Random(5)
        for _ in range(5):
            ins = {net: rng.random() < 0.5 for net in source.inputs}
            for out in source.outputs:
                assert source.evaluate(ins)[out] == again.evaluate(ins)[out]
