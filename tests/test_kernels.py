"""Parity tests: vectorized sizing kernels vs the scalar references.

The contract of :mod:`repro.sizing.kernels` is *exactness*: the
level-blocked SMP relaxation must reproduce the scalar Gauss-Seidel
sweep (same fixed point, same clamped set, same sweep count) and the
array TILOS kernel must reproduce the scalar candidate loop's bump
sequence exactly.  Randomized instances over gate- and transistor-mode
circuits keep both claims honest.
"""

import numpy as np
import pytest

from repro.dag import build_sizing_dag
from repro.errors import SizingError
from repro.generators.random_logic import random_logic
from repro.sizing import (
    MinfloOptions,
    TilosOptions,
    minflotransit,
    solve_smp,
    tilos_size,
    w_phase,
)
from repro.sizing.kernels import (
    build_smp_plan,
    get_smp_plan,
    get_tilos_plan,
    solve_smp_blocked,
)
from repro.sizing.serialize import result_from_dict, result_to_dict
from repro.tech import default_technology
from repro.timing import analyze


@pytest.fixture(scope="module")
def wide_dag():
    """A shallow, wide random-logic DAG (many vertices per level)."""
    circuit = random_logic(
        300, n_inputs=24, n_outputs=12, seed=11, locality=96
    )
    return build_sizing_dag(circuit, default_technology(), mode="gate")


def _dags(request):
    return [
        request.getfixturevalue("c17_gate_dag"),
        request.getfixturevalue("c17_transistor_dag"),
        request.getfixturevalue("adder8_dag"),
        request.getfixturevalue("wide_dag"),
    ]


class TestSmpParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_budgets_match(self, request, seed):
        """Fixed point, clamped set and sweep count agree per instance."""
        for dag in _dags(request):
            rng = np.random.default_rng(seed)
            x_ref = rng.uniform(
                dag.lower, np.minimum(dag.upper, dag.lower * 8)
            )
            budgets = dag.delays(x_ref)
            scalar = w_phase(dag, budgets, engine="scalar")
            vectorized = w_phase(dag, budgets, engine="vectorized")
            scale = float(np.max(np.abs(scalar.x)))
            assert np.allclose(
                scalar.x, vectorized.x, rtol=0, atol=1e-10 * scale
            )
            assert scalar.clamped == vectorized.clamped
            assert scalar.sweeps == vectorized.sweeps
            assert scalar.engine == "scalar"
            assert vectorized.engine == "vectorized"

    def test_clamped_instance_matches(self, c17_gate_dag):
        """Infeasible budgets clamp the same vertices in both engines."""
        dag = c17_gate_dag
        budgets = dag.delays(dag.min_sizes())
        victim = int(np.argmax(dag.model.b))
        budgets[victim] = dag.model.intrinsic[victim] + 1e-3
        scalar = w_phase(dag, budgets, engine="scalar")
        vectorized = w_phase(dag, budgets, engine="vectorized")
        assert not vectorized.feasible
        assert scalar.clamped == vectorized.clamped
        assert scalar.sweeps == vectorized.sweeps

    def test_budget_below_intrinsic_raises_in_both(self, c17_gate_dag):
        dag = c17_gate_dag
        budgets = dag.delays(dag.min_sizes())
        budgets[0] = dag.model.intrinsic[0] * 0.5
        for engine in ("scalar", "vectorized"):
            with pytest.raises(SizingError, match="intrinsic"):
                w_phase(dag, budgets, engine=engine)

    def test_unknown_engine_rejected(self, c17_gate_dag):
        dag = c17_gate_dag
        budgets = dag.delays(dag.min_sizes() * 2)
        with pytest.raises(SizingError, match="engine"):
            w_phase(dag, budgets, engine="simd")
        with pytest.raises(SizingError, match="engine"):
            solve_smp(
                dag.model, budgets, dag.lower, dag.upper,
                dag.topo_order[::-1], engine="simd",
            )

    def test_solve_smp_dispatch(self, adder8_dag):
        """``solve_smp(engine='vectorized')`` equals the blocked solver."""
        dag = adder8_dag
        budgets = dag.delays(dag.min_sizes() * 2.5)
        via_dispatch = solve_smp(
            dag.model, budgets, dag.lower, dag.upper,
            dag.topo_order[::-1], engine="vectorized",
        )
        direct = solve_smp_blocked(
            dag.model, budgets, dag.lower, dag.upper, get_smp_plan(dag)
        )
        assert via_dispatch.engine == "vectorized"
        assert np.array_equal(via_dispatch.x, direct.x)
        assert via_dispatch.sweeps == direct.sweeps


class TestSmpPlan:
    def test_plan_is_cached_per_dag(self, c17_gate_dag):
        assert get_smp_plan(c17_gate_dag) is get_smp_plan(c17_gate_dag)

    def test_levels_respect_read_order(self, request):
        """Every coupling read sees the value the scalar sweep sees.

        For ``a_ij != 0``: a dependency earlier in the sweep order must
        sit in a strictly earlier level (updated read); a later one
        must not sit in an earlier level (stale read).
        """
        for dag in _dags(request):
            plan = get_smp_plan(dag)
            order = dag.topo_order[::-1]
            rank = np.empty(dag.n, dtype=np.int64)
            rank[order] = np.arange(dag.n)
            coo = dag.model.a_matrix.tocoo()
            for i, j in zip(coo.row, coo.col):
                if rank[j] < rank[i]:
                    assert plan.level[i] > plan.level[j]
                else:
                    assert plan.level[i] <= plan.level[j]

    def test_blocks_cover_loaded_vertices_once(self, c17_transistor_dag):
        dag = c17_transistor_dag
        plan = get_smp_plan(dag)
        covered = np.concatenate([rows for rows, _ in plan.blocks])
        assert len(covered) == len(set(covered.tolist()))
        no_load = (dag.model.b == 0) & (
            np.diff(dag.model.a_matrix.indptr) == 0
        )
        assert set(covered.tolist()) == set(
            np.flatnonzero(~no_load).tolist()
        )

    def test_mismatched_sweep_order_rejected(self, c17_gate_dag):
        dag = c17_gate_dag
        with pytest.raises(SizingError, match="sweep order"):
            build_smp_plan(dag.model, dag.topo_order[:3])


class TestTilosParity:
    @pytest.mark.parametrize("ratio", [0.8, 0.6])
    def test_identical_bump_sequence(self, request, ratio):
        """Both kernels bump the same vertices in the same order."""
        for dag in _dags(request):
            dmin = analyze(dag, dag.min_sizes()).critical_path_delay
            target = ratio * dmin
            scalar = tilos_size(
                dag, target, TilosOptions(kernel="scalar"), keep_trace=True
            )
            vectorized = tilos_size(
                dag, target, TilosOptions(kernel="vectorized"),
                keep_trace=True,
            )
            assert scalar.iterations == vectorized.iterations
            assert scalar.feasible == vectorized.feasible
            scale = float(np.max(np.abs(scalar.x)))
            assert np.allclose(
                scalar.x, vectorized.x, rtol=0, atol=1e-10 * scale
            )
            assert np.allclose(
                scalar.trace, vectorized.trace,
                rtol=1e-10, atol=1e-10 * max(dmin, 1.0),
            )

    def test_batch_mode_parity(self, adder8_dag):
        dag = adder8_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        runs = {
            kernel: tilos_size(
                dag, 0.6 * dmin, TilosOptions(kernel=kernel, batch=4)
            )
            for kernel in ("scalar", "vectorized")
        }
        assert runs["scalar"].iterations == runs["vectorized"].iterations
        assert np.allclose(
            runs["scalar"].x, runs["vectorized"].x, rtol=0, atol=1e-9
        )

    def test_kernel_recorded_in_timing_stats(self, c17_gate_dag):
        dag = c17_gate_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        result = tilos_size(dag, 0.8 * dmin)
        assert result.timing_stats["kernel"] == "vectorized"
        assert result.timing_stats["scan_seconds"] >= 0.0
        assert result.timing_stats["refresh_seconds"] >= 0.0

    def test_kernel_validation(self):
        with pytest.raises(SizingError, match="kernel"):
            TilosOptions(kernel="gpu")


class TestTilosPlan:
    def test_plan_is_cached_per_dag(self, c17_gate_dag):
        assert get_tilos_plan(c17_gate_dag) is get_tilos_plan(c17_gate_dag)

    def test_coupling_matches_matrix(self, request):
        for dag in _dags(request):
            plan = get_tilos_plan(dag)
            coo = dag.model.a_matrix.tocoo()
            assert len(plan.coupling) == coo.nnz
            rows = coo.row.astype(np.int64)
            cols = coo.col.astype(np.int64)
            looked_up = plan.coupling_at(rows, cols)
            assert np.array_equal(looked_up, coo.data)

    def test_coupling_at_misses_are_zero(self, c17_gate_dag):
        plan = get_tilos_plan(c17_gate_dag)
        dense = c17_gate_dag.model.a_matrix.toarray()
        rng = np.random.default_rng(5)
        rows = rng.integers(0, c17_gate_dag.n, size=64)
        cols = rng.integers(0, c17_gate_dag.n, size=64)
        assert np.array_equal(
            plan.coupling_at(rows, cols), dense[rows, cols]
        )

    def test_dependents_match_transpose(self, c17_transistor_dag):
        dag = c17_transistor_dag
        plan = get_tilos_plan(dag)
        transpose = dag.model.a_matrix.T.tocsr()
        for v in range(dag.n):
            expected = transpose.indices[
                transpose.indptr[v]:transpose.indptr[v + 1]
            ]
            assert np.array_equal(plan.dependents(v), expected)


class TestMinfloKernel:
    def test_end_to_end_parity(self, c17_gate_dag):
        """The full W/D alternation is kernel-independent."""
        dag = c17_gate_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        target = 0.7 * dmin
        results = {
            kernel: minflotransit(
                dag, target, MinfloOptions(kernel=kernel, max_iterations=8)
            )
            for kernel in ("scalar", "vectorized")
        }
        scalar, vectorized = results["scalar"], results["vectorized"]
        assert scalar.area == pytest.approx(vectorized.area, rel=1e-9)
        assert np.allclose(scalar.x, vectorized.x, rtol=0, atol=1e-9)
        assert all(
            rec.kernel == "vectorized" for rec in vectorized.iterations
        )
        assert all(rec.w_sweeps >= 1 for rec in vectorized.iterations)
        assert set(vectorized.phase_seconds) == {
            "timing", "balance", "d_phase", "w_phase"
        }
        assert vectorized.w_sweeps_total >= vectorized.n_iterations

    def test_kernel_option_validation(self):
        with pytest.raises(SizingError, match="kernel"):
            MinfloOptions(kernel="fpga")

    def test_kernel_counters_round_trip(self, c17_gate_dag):
        """serialize keeps the new counters; loaders tolerate absence."""
        dag = c17_gate_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        result = minflotransit(
            dag, 0.8 * dmin, MinfloOptions(max_iterations=4)
        )
        payload = result_to_dict(result)
        assert "phase_seconds" in payload
        loaded = result_from_dict(payload)
        assert loaded.phase_seconds == result.phase_seconds
        assert [rec.w_sweeps for rec in loaded.iterations] == [
            rec.w_sweeps for rec in result.iterations
        ]
        assert [rec.kernel for rec in loaded.iterations] == [
            rec.kernel for rec in result.iterations
        ]
        # Documents written before the counters existed still load.
        payload.pop("phase_seconds")
        for rec in payload["iterations"]:
            rec.pop("w_sweeps")
            rec.pop("kernel")
        legacy = result_from_dict(payload)
        assert legacy.phase_seconds == {}
        assert all(rec.w_sweeps == 0 for rec in legacy.iterations)
        assert all(rec.kernel == "" for rec in legacy.iterations)
