"""Tests for pluggable cache backends (repro.runner.backends)."""

import json
import sqlite3

import pytest

from repro.errors import RunnerError
from repro.runner import Job, run_one
from repro.runner.backends import (
    CacheBackend,
    DiskBackend,
    SqliteBackend,
    TieredBackend,
    open_backend,
)
from repro.runner.cache import CACHE_LAYOUT_VERSION, ResultCache, job_key

KEY_A = "a" * 64
KEY_B = "b" * 64


def _backends(tmp_path):
    """One instance of every backend kind, rooted under ``tmp_path``."""
    return [
        DiskBackend(tmp_path / "disk"),
        SqliteBackend(tmp_path / "store.db"),
        TieredBackend(
            DiskBackend(tmp_path / "l1"), SqliteBackend(tmp_path / "l2.db")
        ),
    ]


class TestBackendContract:
    """Every backend satisfies the same protocol and semantics."""

    def test_roundtrip_contains_scan(self, tmp_path):
        for backend in _backends(tmp_path):
            assert isinstance(backend, CacheBackend)
            assert backend.get(KEY_A) is None
            assert not backend.contains(KEY_A)
            backend.put(KEY_A, {"n": 1})
            backend.put(KEY_B, {"n": 2})
            assert backend.get(KEY_A) == {"n": 1}
            assert backend.contains(KEY_B)
            assert sorted(backend.scan()) == [KEY_A, KEY_B]

    def test_overwrite_last_write_wins(self, tmp_path):
        for backend in _backends(tmp_path):
            backend.put(KEY_A, {"v": "old"})
            backend.put(KEY_A, {"v": "new"})
            assert backend.get(KEY_A) == {"v": "new"}
            assert sorted(backend.scan()) == [KEY_A]

    def test_describe_names_scheme_and_location(self, tmp_path):
        disk, sqlite_b, tiered = _backends(tmp_path)
        assert disk.describe() == f"disk:{tmp_path / 'disk'}"
        assert sqlite_b.describe() == f"sqlite:{tmp_path / 'store.db'}"
        assert tiered.describe().startswith("tiered:disk:")


class TestDiskQuarantine:
    """Corrupt entries are misses, quarantined to ``*.bad``, never raised."""

    @pytest.mark.parametrize("garbage", [
        b"{ torn off mid-wri",      # truncated JSON
        b"\xff\xfe not even text",  # undecodable bytes
        b"[1, 2, 3]",               # parses, but not an entry object
    ])
    def test_corrupt_entry_is_quarantined_miss(self, tmp_path, garbage):
        backend = DiskBackend(tmp_path)
        backend.put(KEY_A, {"ok": True})
        path = backend.path(KEY_A)
        path.write_bytes(garbage)
        assert backend.get(KEY_A) is None
        assert not path.exists()
        assert path.with_suffix(".json.bad").exists()
        # Permanently a miss — and the key no longer scans.
        assert backend.get(KEY_A) is None
        assert list(backend.scan()) == []

    def test_sqlite_drops_torn_row(self, tmp_path):
        backend = SqliteBackend(tmp_path / "store.db")
        backend.put(KEY_A, {"ok": True})
        with sqlite3.connect(tmp_path / "store.db") as conn:
            conn.execute(
                "UPDATE entries SET payload = '{ torn' WHERE key = ?",
                (KEY_A,),
            )
        assert backend.get(KEY_A) is None
        assert list(backend.scan()) == []


class TestTiering:
    def test_l2_hit_promotes_into_l1(self, tmp_path):
        l1 = DiskBackend(tmp_path / "l1")
        l2 = SqliteBackend(tmp_path / "l2.db")
        tiered = TieredBackend(l1, l2)
        l2.put(KEY_A, {"from": "another replica"})
        assert l1.get(KEY_A) is None
        assert tiered.get(KEY_A) == {"from": "another replica"}
        # Promotion: the next probe is local.
        assert l1.get(KEY_A) == {"from": "another replica"}

    def test_put_writes_through_both_tiers(self, tmp_path):
        l1 = DiskBackend(tmp_path / "l1")
        l2 = SqliteBackend(tmp_path / "l2.db")
        TieredBackend(l1, l2).put(KEY_A, {"n": 1})
        assert l1.get(KEY_A) == {"n": 1}
        assert l2.get(KEY_A) == {"n": 1}

    def test_shared_tier_is_authoritative_for_scan(self, tmp_path):
        l1 = DiskBackend(tmp_path / "l1")
        l2 = SqliteBackend(tmp_path / "l2.db")
        tiered = TieredBackend(l1, l2)
        l1.put(KEY_A, {"local": True})
        l2.put(KEY_B, {"shared": True})
        assert list(tiered.scan()) == [KEY_B]
        assert len(tiered) == 1
        # ... but an L1-only entry still serves reads.
        assert tiered.get(KEY_A) == {"local": True}

    def test_two_instances_share_one_sqlite_store(self, tmp_path):
        """The multi-process story, minus the processes: two backend
        instances (separate connections) on one database file."""
        writer = SqliteBackend(tmp_path / "shared.db")
        reader = SqliteBackend(tmp_path / "shared.db")
        writer.put(KEY_A, {"n": 1})
        assert reader.get(KEY_A) == {"n": 1}
        assert reader.contains(KEY_A)


class TestOpenBackend:
    def test_spec_grammar(self, tmp_path):
        assert isinstance(
            open_backend(f"disk:{tmp_path / 'd'}"), DiskBackend
        )
        assert isinstance(
            open_backend(f"sqlite:{tmp_path / 's.db'}"), SqliteBackend
        )
        bare = open_backend(str(tmp_path / "bare"))
        assert isinstance(bare, DiskBackend)
        tiered = open_backend(
            f"tiered:{tmp_path / 'l1'},{tmp_path / 'l2.db'}"
        )
        assert isinstance(tiered, TieredBackend)
        assert isinstance(tiered.shared, SqliteBackend)
        nested = open_backend(
            f"tiered:{tmp_path / 'l1'},disk:{tmp_path / 'l2'}"
        )
        assert isinstance(nested.shared, DiskBackend)

    @pytest.mark.parametrize("spec", [
        "", "sqlte:typo.db", "tiered:only-one-part", "tiered:,x",
    ])
    def test_bad_specs_are_usage_errors(self, spec):
        with pytest.raises(RunnerError):
            open_backend(spec)

    def test_single_letter_scheme_is_a_drive_path(self, tmp_path):
        backend = open_backend("C:\\cache")
        assert isinstance(backend, DiskBackend)


class TestResultCacheOverBackends:
    def _specs(self, tmp_path):
        return [
            str(tmp_path / "plain-dir"),
            f"sqlite:{tmp_path / 'cache.db'}",
            f"tiered:{tmp_path / 'l1'},{tmp_path / 'l2.db'}",
        ]

    def test_envelope_roundtrip_on_every_backend(self, tmp_path):
        for spec in self._specs(tmp_path):
            cache = ResultCache(spec)
            cache.put(KEY_A, {"result": None, "n": 7})
            assert cache.get(KEY_A) == {"result": None, "n": 7}
            assert KEY_A in cache
            assert len(cache) == 1 and cache.scan() == [KEY_A]

    def test_layout_version_mismatch_is_a_miss(self, tmp_path):
        for spec in self._specs(tmp_path):
            cache = ResultCache(spec)
            cache.backend.put(KEY_A, {
                "cache_layout": CACHE_LAYOUT_VERSION + 1,
                "payload": {"stale": True},
            })
            assert cache.get(KEY_A) is None

    def test_corrupt_disk_entry_through_result_cache(self, tmp_path):
        """The service-facing guarantee: a truncated cache file can
        never raise out of ``ResultCache.get`` — it quarantines."""
        cache = ResultCache(tmp_path / "cache")
        cache.put(KEY_A, {"fine": True})
        path = cache._path(KEY_A)
        path.write_text(json.dumps({"cache_layout": 1})[:9])
        assert cache.get(KEY_A) is None
        assert path.with_suffix(".json.bad").exists()

    def test_campaign_replay_through_sqlite_backend(self, tmp_path):
        """A sizing stored via the sqlite backend replays as a hit."""
        cache = ResultCache(f"sqlite:{tmp_path / 'cache.db'}")
        job = Job(circuit="c17", delay_spec=0.6)
        first = run_one(job, cache=cache)
        assert first.status == "ok" and not first.cached
        again = run_one(job, cache=ResultCache(
            f"sqlite:{tmp_path / 'cache.db'}"
        ))
        assert again.cached
        assert again.payload == first.payload

    def test_key_is_backend_independent(self, tmp_path):
        """The content address names the result, not the storage."""
        job = Job(circuit="c17", delay_spec=0.6)
        assert job_key(job) == job_key(job)
