"""Tests for the observability layer: trace contexts and spans,
the metrics registry + Prometheus exposition, and the waterfall tool."""

import json
import multiprocessing
import re
import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    observe_spans,
)
from repro.obs.trace import (
    SpanSink,
    current_carrier,
    current_trace,
    format_trace_header,
    parse_trace_header,
    span,
    trace_scope,
)
from repro.obs.waterfall import (
    build_tree,
    critical_path,
    render_waterfall,
    trace_report,
)
from repro.runner.executor import pool_entry
from repro.runner.spec import Job


class TestTraceHeader:
    def test_round_trip(self):
        assert parse_trace_header(format_trace_header("abc123")) == (
            "abc123", None,
        )
        assert parse_trace_header(
            format_trace_header("abc123", "def456")
        ) == ("abc123", "def456")
        # A trailing dash is tolerated as "no parent".
        assert parse_trace_header("abc123-") == ("abc123", None)

    @pytest.mark.parametrize("bad", [
        None, "", "   ", "-", "a b", "abc-d f", "x" * 200,
        "abc;rm -rf", "-abcdef",
    ])
    def test_malformed_headers_never_raise(self, bad):
        assert parse_trace_header(bad) == (None, None)


class TestSpans:
    def test_no_context_still_measures_duration(self):
        assert current_trace() is None
        with span("phase") as sp:
            pass
        assert sp.duration_s >= 0.0
        assert current_carrier() is None

    def test_nesting_parents_and_sink_records(self):
        sink = SpanSink()
        with trace_scope(sink=sink) as ctx:
            with span("outer", kind="test") as outer:
                with span("inner"):
                    pass
                outer.set(extra=1)
        records = sink.drain()
        assert [r["name"] for r in records] == ["inner", "outer"]
        inner, outer = records
        assert inner["trace"] == outer["trace"] == ctx.trace_id
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert outer["attrs"] == {"kind": "test", "extra": 1}
        assert inner["duration_s"] <= outer["duration_s"]

    def test_exception_emits_error_attr_and_restores_parent(self):
        sink = SpanSink()
        with trace_scope(sink=sink) as ctx:
            with pytest.raises(ValueError):
                with span("boom"):
                    raise ValueError("no")
            assert ctx.span_id is None  # parent restored after unwind
        (record,) = sink.drain()
        assert record["attrs"]["error"] == "ValueError"

    def test_file_sink_appends_jsonl(self, tmp_path):
        path = tmp_path / "deep" / "trace.jsonl"
        sink = SpanSink(path)
        with trace_scope(sink=sink, trace_id="t1"):
            with span("a"):
                pass
        with trace_scope(sink=sink, trace_id="t2"):
            with span("b"):
                pass
        sink.close()
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert [(r["trace"], r["name"]) for r in lines] == [
            ("t1", "a"), ("t2", "b"),
        ]

    def test_carrier_snapshots_the_active_parent(self):
        with trace_scope(trace_id="tid0", parent_id="p0"):
            assert current_carrier() == {
                "trace_id": "tid0", "parent_id": "p0",
            }
            with span("mid"):
                carrier = current_carrier()
                assert carrier["trace_id"] == "tid0"
                assert carrier["parent_id"] not in (None, "p0")


class TestPoolBoundary:
    """Span parentage survives the pickled process-pool boundary."""

    def test_pool_entry_ships_spans_back_with_parentage(self):
        methods = multiprocessing.get_all_start_methods()
        method = "forkserver" if "forkserver" in methods else "spawn"
        job = Job(circuit="rca:4", delay_spec=1.5, kind="wphase")
        carrier = {"trace_id": "cafe0123cafe0123", "parent_id": "root0001"}
        with ProcessPoolExecutor(
            max_workers=1,
            mp_context=multiprocessing.get_context(method),
        ) as pool:
            status, _payload, error, wall, obs = pool.submit(
                pool_entry, job, None, carrier
            ).result()
        assert status == "ok", error
        spans = obs["spans"]
        assert spans, "worker shipped no spans back"
        assert {s["trace"] for s in spans} == {"cafe0123cafe0123"}
        execute = [s for s in spans if s["name"] == "job.execute"]
        assert len(execute) == 1
        # The worker-side root parents under the carrier's parent id…
        assert execute[0]["parent"] == "root0001"
        assert execute[0]["duration_s"] <= wall
        # …and every other span chains up to it within the bundle.
        ids = {s["id"] for s in spans}
        for s in spans:
            if s is not execute[0]:
                assert s["parent"] in ids

    def test_pool_entry_without_carrier_ships_nothing(self):
        job = Job(circuit="rca:4", delay_spec=1.5, kind="wphase")
        status, _payload, _error, _wall, obs = pool_entry(job, None, None)
        assert status == "ok"
        assert obs is None


_SERIES = re.compile(
    r"[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" [0-9+.eE-]+(Inf)?$"
)


class TestMetricsRegistry:
    def test_counter_gauge_histogram_values(self):
        reg = MetricsRegistry()
        hits = reg.counter("hits", "h", ("tier",))
        hits.inc(tier="l1")
        hits.inc(2.0, tier="l2")
        assert hits.value(tier="l1") == 1.0
        assert hits.total() == 3.0
        depth = reg.gauge("depth", "d")
        depth.set(7)
        depth.add(-2)
        assert depth.value() == 5.0
        lat = reg.histogram("lat", "l", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            lat.observe(v)
        snap = lat.value()
        assert snap["count"] == 3 and snap["sum"] == 5.55
        assert snap["buckets"] == {"0.1": 1, "1": 2, "+Inf": 3}

    def test_counter_rejects_decrease_and_label_mismatch(self):
        reg = MetricsRegistry()
        c = reg.counter("c", "c", ("a",))
        with pytest.raises(ValueError):
            c.inc(-1.0, a="x")
        with pytest.raises(ValueError):
            c.inc(b="x")

    def test_registration_is_idempotent_but_typed(self):
        reg = MetricsRegistry()
        first = reg.counter("n", "help", ("l",))
        assert reg.counter("n", "other help", ("l",)) is first
        with pytest.raises(ValueError):
            reg.gauge("n", "now a gauge", ("l",))
        with pytest.raises(ValueError):
            reg.counter("n", "different labels", ("other",))

    def test_exposition_is_valid_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "Jobs.", ("status",)).inc(status="ok")
        reg.gauge("depth", "Depth.").set(3)
        h = reg.histogram("secs", "Seconds.", buckets=(0.5,))
        h.observe(0.2)
        text = reg.expose()
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE ")), line
            else:
                assert _SERIES.fullmatch(line), line
        # Counter naming convention + cumulative histogram series.
        assert 'jobs_total{status="ok"} 1' in text
        assert 'secs_bucket{le="0.5"} 1' in text
        assert 'secs_bucket{le="+Inf"} 1' in text
        assert "secs_count 1" in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        c = reg.counter("c", "c", ("v",))
        c.inc(v='quo"te\nnew')
        assert 'v="quo\\"te\\nnew"' in reg.expose()

    def test_locked_counters_survive_a_thread_hammer(self):
        reg = MetricsRegistry()
        c = reg.counter("hammer_total", "h", ("t",))

        def work():
            for _ in range(2000):
                c.inc(t="x")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(t="x") == 16000.0

    def test_observe_spans_folds_durations(self):
        reg = MetricsRegistry()
        observe_spans(reg, [
            {"name": "d_phase", "duration_s": 0.5},
            {"name": "d_phase", "duration_s": 0.25},
            {"name": "w_phase", "duration_s": 0.125},
        ])
        text = reg.expose()
        assert 'repro_phase_seconds_total{phase="d_phase"} 0.75' in text
        assert 'repro_phase_calls_total{phase="w_phase"} 1' in text

    def test_global_registry_is_shared(self):
        assert get_registry() is get_registry()


def _spans(*triples):
    return [
        {
            "type": "span", "trace": "t", "id": sid, "parent": parent,
            "name": name, "ts": float(i), "duration_s": 1.0 / (i + 1),
        }
        for i, (sid, parent, name) in enumerate(triples)
    ]


class TestWaterfall:
    def test_build_tree_and_critical_path(self):
        spans = _spans(
            ("r", None, "job"),
            ("a", "r", "fast"),
            ("b", "r", "slow"),
            ("c", "b", "leaf"),
        )
        spans[2]["duration_s"] = 0.9
        forest = build_tree(spans)
        assert len(forest) == 1
        root = forest[0]
        assert [n["span"]["id"] for n in root["children"]] == ["a", "b"]
        assert [n["span"]["name"] for n in critical_path(root)] == [
            "job", "slow", "leaf",
        ]

    def test_orphans_become_roots(self):
        forest = build_tree(_spans(("x", "missing-parent", "orphan")))
        assert len(forest) == 1
        assert forest[0]["span"]["name"] == "orphan"

    def test_render_includes_tree_and_critical_path(self):
        out = render_waterfall("t", _spans(
            ("r", None, "job"), ("a", "r", "step"),
        ))
        assert "trace t" in out
        assert "└─ step" in out
        assert "critical path:" in out

    def test_trace_report_from_file_and_by_id(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = _spans(("r", None, "job"), ("a", "r", "step"))
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        by_file = trace_report(str(path))
        assert "job" in by_file
        by_id = trace_report("t", files=(str(path),))
        assert "step" in by_id
        as_json = json.loads(trace_report("t", files=(path,), json_out=True))
        assert as_json["trace"] == "t" and as_json["n_spans"] == 2

    def test_trace_report_errors_are_structured(self, tmp_path):
        with pytest.raises(ReproError):
            trace_report(str(tmp_path / "absent.jsonl"))
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(_spans(("r", None, "job"))[0]) + "\n")
        with pytest.raises(ReproError):
            trace_report("unknown-trace-id", files=(path,))


_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def _exposed_series(text: str, family: str) -> dict[tuple, float]:
    """Parse one metric family's series out of a Prometheus exposition:
    ``{sorted (label, value) pairs: sample value}``."""
    out: dict[tuple, float] = {}
    for line in text.splitlines():
        if not line.startswith(family + "{"):
            continue
        labels_part, value = line.rsplit(" ", 1)
        labels = tuple(sorted(_LABEL.findall(labels_part)))
        out[labels] = float(value)
    return out


class TestStatsMetricsConsistency:
    """``/v1/stats`` is a *view* over the same registry cells the
    ``/v1/metrics`` exposition serializes — the two endpoints can never
    disagree.  Pinned here for the per-backend flow stats (including
    the ``warm_solves`` / ``warm_flow_reused`` SolveStats counters) and
    the warm-start corpus totals this PR adds."""

    def test_flow_and_warmstart_views_match_exposition(self, tmp_path):
        from repro.runner.corpus import warmstart_counts
        from repro.service import SizingService

        before = warmstart_counts()
        service = SizingService(
            jobs=1,
            cache=tmp_path / "cache",
            run_dir=None,
            warm_corpus=f"disk:{tmp_path / 'cache'}",
        )
        try:
            # Two drifting targets: the first is a corpus miss, the
            # second probes the first's record.
            service.size_sync({"circuit": "rca:6", "delay_spec": 0.9})
            service.size_sync({"circuit": "rca:6", "delay_spec": 0.85})
            stats = service.stats()
            text = service.metrics_text()
        finally:
            service.close()

        flow = stats["flow"]
        assert flow, "sizing jobs recorded no flow stats"
        for fields in flow.values():
            # Every SolveStats field is surfaced, warm counters included.
            assert "warm_solves" in fields
            assert "warm_flow_reused" in fields
        exposed_flow = _exposed_series(text, "repro_flow_stat")
        stats_flow = {
            (("backend", backend), ("field", field_name)): float(value)
            for backend, fields in flow.items()
            for field_name, value in fields.items()
        }
        assert stats_flow == exposed_flow

        warm = stats["warmstart"]
        delta = {
            key: warm.get(key, 0) - before.get(key, 0) for key in warm
        }
        assert delta.get("miss", 0) >= 1  # first job probed an empty corpus
        assert delta.get("seeded", 0) + delta.get("fallback", 0) >= 1
        exposed_warm = _exposed_series(text, "repro_warmstart_total")
        stats_warm = {
            (("result", result),): float(count)
            for result, count in warm.items()
        }
        assert stats_warm == exposed_warm
