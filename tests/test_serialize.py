"""Tests for sizing-result JSON persistence."""

import pytest

from repro.errors import SizingError
from repro.sizing import minflotransit
from repro.sizing.serialize import (
    SCHEMA_VERSION,
    load_result,
    payload_schema_version,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.timing import analyze


@pytest.fixture(scope="module")
def result(c17_gate_dag):
    d_min = analyze(c17_gate_dag, c17_gate_dag.min_sizes()).critical_path_delay
    return minflotransit(c17_gate_dag, 0.6 * d_min)


class TestSerialize:
    def test_roundtrip(self, result, tmp_path):
        path = save_result(result, tmp_path / "r.json")
        again = load_result(path)
        assert again.name == result.name
        assert again.x == pytest.approx(result.x)
        assert again.area == pytest.approx(result.area)
        assert again.n_iterations == result.n_iterations
        assert again.iterations[0].backend == result.iterations[0].backend

    def test_labels_included_with_dag(self, result, c17_gate_dag):
        payload = result_to_dict(result, c17_gate_dag)
        assert len(payload["labels"]) == c17_gate_dag.n

    def test_dag_mismatch_detected(self, result, adder8_dag):
        with pytest.raises(SizingError, match="vertices"):
            result_to_dict(result, adder8_dag)

    def test_schema_checked(self, result):
        payload = result_to_dict(result)
        payload["schema"] = "other/9"
        del payload["schema_version"]
        with pytest.raises(SizingError, match="schema"):
            result_from_dict(payload)

    def test_schema_version_mismatch_rejected(self, result):
        payload = result_to_dict(result)
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SizingError, match="version"):
            result_from_dict(payload)

    def test_v1_documents_rejected(self, result):
        # Version 1 predates the explicit schema_version field; its
        # family-string suffix must still be recognized — and refused.
        payload = result_to_dict(result)
        del payload["schema_version"]
        payload["schema"] = "repro.sizing-result/1"
        assert payload_schema_version(payload) == 1
        with pytest.raises(SizingError, match="version 1"):
            result_from_dict(payload)

    def test_payload_carries_current_version(self, result):
        payload = result_to_dict(result)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload_schema_version(payload) == SCHEMA_VERSION

    def test_derived_properties_survive(self, result, tmp_path):
        again = load_result(save_result(result, tmp_path / "r.json"))
        assert again.meets_target == result.meets_target
        assert again.area_saving_vs_initial == pytest.approx(
            result.area_saving_vs_initial
        )
