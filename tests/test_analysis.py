"""Tests for the analysis layer: trade-off sweeps and reporting."""

import pytest

from repro.analysis import area_delay_curve, ascii_plot, format_table


class TestTradeoffCurve:
    @pytest.fixture(scope="class")
    def curve(self, c17_gate_dag):
        return area_delay_curve(c17_gate_dag, [0.5, 0.7, 1.0])

    def test_points_sorted_by_ratio(self, curve):
        ratios = [p.delay_ratio for p in curve.points]
        assert ratios == sorted(ratios)

    def test_minflo_never_above_tilos(self, curve):
        for p in curve.points:
            if p.tilos_area_ratio is not None:
                assert p.minflo_area_ratio <= p.tilos_area_ratio + 1e-9

    def test_area_monotone_decreasing_in_ratio(self, curve):
        tilos = [
            p.tilos_area_ratio
            for p in curve.points
            if p.tilos_area_ratio is not None
        ]
        assert all(a >= b - 1e-9 for a, b in zip(tilos, tilos[1:]))

    def test_loose_end_is_min_area(self, curve):
        last = curve.points[-1]
        assert last.delay_ratio == 1.0
        assert last.tilos_area_ratio == pytest.approx(1.0)
        assert last.minflo_area_ratio == pytest.approx(1.0)

    def test_infeasible_ratio_yields_none(self, c17_gate_dag):
        curve = area_delay_curve(
            c17_gate_dag, [0.01, 1.0], run_minflo=False
        )
        infeasible = curve.points[0]
        assert infeasible.tilos_area_ratio is None
        assert infeasible.saving_percent is None

    def test_series_extraction(self, curve):
        tilos = curve.series("tilos")
        minflo = curve.series("minflo")
        assert len(tilos) == len(minflo) == 3
        assert tilos[0][0] == 0.5

    def test_warm_start_matches_cold(self, c17_gate_dag):
        """Warm-started sweep areas equal cold single-target runs."""
        from repro.sizing import tilos_size

        curve = area_delay_curve(
            c17_gate_dag, [0.5, 0.8], run_minflo=False
        )
        d_min = curve.d_min
        for p in curve.points:
            cold = tilos_size(c17_gate_dag, p.delay_ratio * d_min)
            assert p.tilos_area_ratio == pytest.approx(
                cold.area / curve.min_area, rel=0.02
            )


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["a", "long_header"],
            [["xxxx", "1"], ["y", "22"]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long_header" in lines[2]
        widths = {len(line) for line in lines[2:]}
        assert len(widths) <= 2  # header/rule/body share the width

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        text = ascii_plot(
            [
                ("alpha", [(0.0, 1.0), (1.0, 2.0)]),
                ("beta", [(0.0, 2.0), (1.0, 1.0)]),
            ],
            x_label="x",
            y_label="y",
            title="demo",
        )
        assert "demo" in text
        assert "o = alpha" in text
        assert "x = beta" in text
        assert text.count("o") >= 2

    def test_no_data(self):
        assert ascii_plot([("empty", [])]) == "(no data)"

    def test_single_point(self):
        text = ascii_plot([("s", [(1.0, 1.0)])])
        assert "o" in text
