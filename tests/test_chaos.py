"""Chaos suite: seeded fault schedules over real campaigns and fleets.

The recovery oracle is the paper's own determinism: a run that survives
injected faults must produce payloads *byte-identical* (via
``canonical_json(comparable_payload(...))``) to a fault-free run of the
same jobs.  Three schedules are pinned:

1. worker kills mid-campaign (pool restarts + cache re-probe),
2. shared-cache I/O errors (breaker trips, service degrades to the
   local tier, then recovers),
3. queue lease/publish contention plus truncated HTTP responses across
   a two-replica fleet (retry policies absorb everything).

Plus the torn-write matrix: a truncated ``campaign.jsonl`` tail, a
crash between cache put and log append, and a torn SQLite queue row —
none may duplicate work, drop work, or corrupt a payload.
"""

import sqlite3
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.faults import CircuitBreaker, RetryPolicy
from repro.faults.injector import active, install, uninstall
from repro.runner import Job, ResultCache, load_run, resume, run, run_campaign
from repro.runner.spec import CampaignSpec
from repro.service import ServiceClient, SizingService, make_server
from repro.service.queue import WorkQueue
from repro.sizing.serialize import canonical_json, comparable_payload

JOBS = [
    Job("rca:6", 0.95),
    Job("rca:6", 0.90),
    Job("c17", 0.60),
    Job("c17", 0.70),
]


def _comparable(outcome) -> str:
    assert outcome.status in ("ok", "infeasible"), outcome.error
    return canonical_json(comparable_payload(outcome.payload))


def _comparable_payload(payload: dict) -> str:
    return canonical_json(comparable_payload(payload))


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    uninstall()
    yield
    uninstall()


@pytest.mark.slow
class TestWorkerKillSchedule:
    """Schedule 1: SIGKILL-equivalent worker deaths mid-campaign."""

    def test_campaign_survives_kills_byte_identical(self, tmp_path):
        baseline_cache = ResultCache(tmp_path / "baseline")
        baseline = run_campaign(JOBS, jobs=2, cache=baseline_cache)
        assert all(o.status == "ok" for o in baseline.outcomes)

        state = tmp_path / "faults"
        state.mkdir()
        # Rate 1.0: every worker entry dies until the fleet-wide cap
        # (two marker files in the shared state dir) is exhausted —
        # without the shared cap, every restarted worker would redraw
        # the same RNG stream and die forever.
        install("worker:kill@1*2", seed=11, state_dir=state, propagate=False)
        chaos_cache = ResultCache(tmp_path / "chaos")
        chaos = run_campaign(JOBS, jobs=2, cache=chaos_cache)

        assert len(list(state.glob("cap-worker.kill.*"))) == 2  # both fired
        for fault_free, survived in zip(baseline.outcomes, chaos.outcomes):
            assert _comparable(fault_free) == _comparable(survived)
        # The caches converged on identical entries under identical keys.
        assert sorted(baseline_cache.scan()) == sorted(chaos_cache.scan())
        for key in baseline_cache.scan():
            assert _comparable_payload(baseline_cache.get(key)) \
                == _comparable_payload(chaos_cache.get(key))


class TestCacheBreakerSchedule:
    """Schedule 2: shared-tier I/O errors trip the breaker; the service
    degrades to the local tier, reports it, and recovers."""

    def _service(self, tmp_path, name: str) -> SizingService:
        return SizingService(
            jobs=1,
            cache=f"tiered:{tmp_path / name / 'l1'},"
                  f"sqlite:{tmp_path / name / 'l2.db'}",
            run_dir=tmp_path / name / "run",
        )

    def test_breaker_trips_degrades_and_recovers(self, tmp_path):
        fault_free = self._service(tmp_path, "clean")
        chaotic = self._service(tmp_path, "chaos")
        tiered = chaotic.cache.backend
        tiered.breaker = CircuitBreaker(
            "cache.shared", failure_threshold=2, reset_timeout=0.05
        )
        tiered.retry = RetryPolicy(
            attempts=2, base_delay=0.001, jitter=0.0,
            retryable=(OSError, sqlite3.Error),
        )
        body_a = {"circuit": JOBS[0].circuit, "delay_spec": JOBS[0].delay_spec}
        body_b = {"circuit": JOBS[1].circuit, "delay_spec": JOBS[1].delay_spec}
        try:
            baseline = fault_free.size_sync(body_a)
            assert baseline.status == "ok"
            assert chaotic.health()["status"] == "ok"

            install("cache.get:io_error@1", seed=5, propagate=False)
            first = chaotic.size_sync(body_a)
            assert first.status == "ok"  # computed despite the outage
            assert tiered.breaker.state == "open"

            health = chaotic.health()
            assert health["status"] == "degraded"
            assert any("breaker" in reason for reason in health["reasons"])
            stats = chaotic.stats()
            assert stats["breaker"]["state"] == "open"
            assert stats["faults"]["injected"].get("cache.get:io_error", 0) > 0

            # The dependency recovers: the half-open re-probe closes the
            # breaker on the next shared-tier call.
            uninstall()
            time.sleep(0.06)
            second = chaotic.size_sync(body_b)
            assert second.status == "ok"
            assert tiered.breaker.state == "closed"
            assert chaotic.health()["status"] == "ok"

            # Determinism held through the whole episode.
            assert _comparable_payload(first.payload) \
                == _comparable_payload(baseline.payload)
            clean_second = fault_free.size_sync(body_b)
            assert _comparable_payload(second.payload) \
                == _comparable_payload(clean_second.payload)
        finally:
            fault_free.close()
            chaotic.close()


@pytest.mark.slow
class TestFleetContentionSchedule:
    """Schedule 3: queue busy-errors + truncated HTTP responses over a
    two-replica fleet; retry policies absorb both."""

    @pytest.fixture()
    def fleet(self, tmp_path):
        boxes = []
        for name in ("a", "b"):
            service = SizingService(
                jobs=1,
                cache=f"sqlite:{tmp_path / 'cache.db'}",
                run_dir=tmp_path / f"run-{name}",
                queue=tmp_path / "q.db",
            )
            server = make_server(service, quiet=True)
            host, port = server.server_address[:2]
            threading.Thread(
                target=server.serve_forever, daemon=True
            ).start()
            boxes.append(
                (service, server, ServiceClient(f"http://{host}:{port}"))
            )
        yield boxes
        for service, server, _ in boxes:
            server.shutdown()
            server.server_close()
            service.close()

    def test_fleet_completes_under_contention(self, fleet, tmp_path):
        (_, _, client_a), (_, _, client_b) = fleet
        baseline_cache = ResultCache(tmp_path / "baseline")
        baseline = run_campaign(JOBS[:2], cache=baseline_cache)

        # Capped rather than probabilistic: every fire is guaranteed to
        # happen (no vacuous pass) and every retry budget is guaranteed
        # to cover the worst-case burst (3 busy-errors < 4 attempts of
        # the queue policy; 2 truncations < 3 attempts of the client's).
        install(
            "queue.lease:busy@1*3;queue.publish:busy@1*2;"
            "http.response:truncate@1*2",
            seed=23,
            propagate=False,
        )
        replies = [
            client_a.size(circuit=JOBS[0].circuit, delay_spec=JOBS[0].delay_spec),
            client_b.size(circuit=JOBS[1].circuit, delay_spec=JOBS[1].delay_spec),
        ]
        injected = active().counts()
        uninstall()

        assert all(reply["status"] == "ok" for reply in replies)
        # The schedule genuinely fired (not a vacuous pass): both the
        # queue contention and the response truncation happened.
        assert injected["http.response:truncate"] == 2
        assert injected["queue.lease:busy"] + injected["queue.publish:busy"] > 0
        for reply, fault_free in zip(replies, baseline.outcomes):
            assert _comparable_payload(reply["payload"]) \
                == _comparable(fault_free)
        # Cross-replica read of a job answered under faults is intact.
        seen = client_b.job(replies[0]["id"])
        assert seen["status"] == "ok"


class TestExactReplay:
    """The same spec + seed replays the exact fire schedule — the
    property every other chaos test leans on."""

    def test_two_installs_fire_identically(self, tmp_path):
        counts = []
        for _ in range(2):
            install("solver:delay=0.0@0.5", seed=42, propagate=False)
            cache = ResultCache(tmp_path / f"run{len(counts)}")
            result = run_campaign(JOBS[:2], cache=cache)  # jobs=1: inline
            assert all(o.status == "ok" for o in result.outcomes)
            counts.append(active().counts())
            uninstall()
        assert counts[0] == counts[1]
        assert counts[0]["solver:delay"] > 0  # the schedule was live


class TestTornWrites:
    """Crash-consistency: torn artifacts are skipped or quarantined,
    never duplicated, dropped, or served as truth."""

    def _spec(self):
        return CampaignSpec(
            name="torn", circuits=("rca:6",), delay_specs=(0.95, 0.9)
        )

    def test_truncated_log_tail_resumes_from_cache(self, tmp_path):
        run_dir = tmp_path / "run"
        cache_dir = tmp_path / "cache"
        first = run(self._spec(), cache=cache_dir, run_dir=run_dir)
        assert all(o.status == "ok" for o in first.outcomes)

        log = run_dir / "campaign.jsonl"
        torn = log.read_bytes()[:-20]  # knife through the last record
        log.write_bytes(torn)
        state = load_run(run_dir)
        assert state.counts()["ok"] == 1  # the torn record is ignored

        second = resume(run_dir, cache=cache_dir)
        # Every job replays from the cache: the torn log costs a probe,
        # never a recompute, and payloads stay byte-identical.
        assert all(o.cached for o in second.outcomes)
        for a, b in zip(first.outcomes, second.outcomes):
            assert _comparable(a) == _comparable(b)

    def test_crash_between_cache_put_and_log_append(self, tmp_path):
        # Simulate a worker killed after the cache write landed but
        # before the run log recorded the outcome: drop the log's last
        # record entirely (the cache entry survives).
        run_dir = tmp_path / "run"
        cache_dir = tmp_path / "cache"
        first = run(self._spec(), cache=cache_dir, run_dir=run_dir)

        log = run_dir / "campaign.jsonl"
        lines = log.read_text().splitlines()
        log.write_text("\n".join(lines[:-1]) + "\n")

        second = resume(run_dir, cache=cache_dir)
        assert all(o.cached for o in second.outcomes)
        for a, b in zip(first.outcomes, second.outcomes):
            assert _comparable(a) == _comparable(b)
        # The re-run appended exactly one fresh record for the lost job.
        assert load_run(run_dir).counts()["ok"] == 2

    def test_torn_queue_row_neither_duplicates_nor_drops(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.db")
        before = queue.create(JOBS[0], key=None)
        torn = queue.create(JOBS[1], key=None)
        after = queue.create(JOBS[2], key=None)
        with queue._connect() as conn:  # tear the middle row's payload
            conn.execute(
                "UPDATE jobs SET job = ? WHERE id = ?",
                ('{"circuit": "rca:6", "delay_sp', torn.id),
            )

        leased = [queue.lease("w"), queue.lease("w")]
        assert [r.id for r in leased] == [before.id, after.id]
        assert queue.lease("w") is None  # torn row is not re-leased

        # Quarantined, visible, and refused — not silently gone.
        parked = queue.failed_jobs()
        assert [row["id"] for row in parked] == [torn.id]
        assert "torn" in parked[0]["error"]
        listed, _ = queue.list(limit=10)
        assert torn.id not in [r.id for r in listed]
        with pytest.raises(ServiceError) as err:
            queue.requeue(torn.id)
        assert err.value.status == 400
