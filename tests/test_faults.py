"""Unit tests for the fault-injection harness and the hardening it
exercises: spec grammar, seeded determinism, fleet-wide caps, the
shared retry policy, the circuit breaker, and the portable watchdog
timeout."""

import os
import sqlite3
import threading
import time

import pytest

from repro.errors import JobTimeoutError, ReproError
from repro.faults import (
    CircuitBreaker,
    FaultInjector,
    FaultRule,
    RetryPolicy,
    call_with_retry,
    format_spec,
    parse_spec,
)
from repro.faults import injector as injector_mod
from repro.faults.injector import install, install_from_args, uninstall
from repro.runner.backends import DiskBackend, SqliteBackend, TieredBackend
from repro.runner.executor import _with_timeout


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """Every test starts and ends with fault injection off."""
    uninstall()
    yield
    uninstall()


class TestSpecGrammar:
    def test_full_clause_round_trips(self):
        text = "cache.get:io_error@0.05;worker:kill@0.02*2;solver:delay=0.5@1"
        rules = parse_spec(text)
        assert [r.site for r in rules] == ["cache.get", "worker", "solver"]
        assert rules[1] == FaultRule(
            site="worker", kind="kill", rate=0.02, max_count=2
        )
        assert rules[2].arg == 0.5 and rules[2].sleep_seconds == 0.5
        assert parse_spec(format_spec(rules)) == rules

    def test_empty_and_trailing_clauses_are_ignored(self):
        assert parse_spec("") == ()
        assert parse_spec(" ; ;") == ()
        assert len(parse_spec("worker:kill@1;")) == 1

    def test_default_sleeps(self):
        hang, delay = parse_spec("worker:hang@1;solver:delay@1")
        assert hang.sleep_seconds == 30.0
        assert delay.sleep_seconds == 0.01

    @pytest.mark.parametrize("bad", [
        "worker",                      # no kind at all
        "worker:kill",                 # missing @RATE
        "worker:sigsegv@0.1",          # unknown kind
        "worker:kill@0",               # rate outside (0, 1]
        "worker:kill@1.5",             # rate outside (0, 1]
        "worker:kill@oops",            # junk rate
        "worker:kill@0.1*0",           # max below 1
        "worker:kill@0.1*two",         # junk max
        "solver:delay=-1@0.1",         # negative sleep
        "solver:delay=abc@0.1",        # junk arg
    ])
    def test_malformed_clause_raises(self, bad):
        with pytest.raises(ReproError):
            parse_spec(bad)


class TestInjectorDeterminism:
    def test_same_seed_same_schedule(self):
        rules = parse_spec("x:error@0.3")
        pattern = []
        for _ in range(2):
            inj = FaultInjector(rules, seed=7)
            fires = []
            for _ in range(200):
                try:
                    inj.fire("x")
                    fires.append(0)
                except RuntimeError:
                    fires.append(1)
            pattern.append(fires)
        assert pattern[0] == pattern[1]
        assert sum(pattern[0]) > 0  # the schedule actually fires

    def test_different_seed_different_schedule(self):
        rules = parse_spec("x:error@0.3")

        def schedule(seed):
            inj = FaultInjector(rules, seed=seed)
            out = []
            for _ in range(200):
                try:
                    inj.fire("x")
                    out.append(0)
                except RuntimeError:
                    out.append(1)
            return out

        assert schedule(1) != schedule(2)

    def test_kinds_raise_their_exception(self):
        inj = FaultInjector(parse_spec("a:io_error@1;b:busy@1;c:error@1"))
        with pytest.raises(OSError):
            inj.fire("a")
        with pytest.raises(sqlite3.OperationalError):
            inj.fire("b")
        with pytest.raises(RuntimeError):
            inj.fire("c")
        inj.fire("unknown-site")  # silently nothing

    def test_truncate_is_a_decision_not_an_action(self):
        inj = FaultInjector(parse_spec("http.response:truncate@1"))
        inj.fire("http.response")  # action probe ignores decision kinds
        assert inj.decide("http.response") is True
        assert inj.decide("elsewhere") is False

    def test_counts_and_drain_events(self):
        inj = FaultInjector(parse_spec("x:error@1*3"))
        for _ in range(5):
            with pytest.raises(RuntimeError):
                inj.fire("x")
            if inj.counts()["x:error"] == 3:
                break
        assert inj.counts() == {"x:error": 3}
        events = inj.drain_events()
        assert len(events) == 3
        assert all(e["site"] == "x" and e["kind"] == "error" for e in events)
        assert inj.drain_events() == []  # drained

    def test_local_cap_stops_fires(self):
        inj = FaultInjector(parse_spec("x:error@1*2"))
        fired = 0
        for _ in range(10):
            try:
                inj.fire("x")
            except RuntimeError:
                fired += 1
        assert fired == 2

    def test_shared_cap_holds_across_processes(self, tmp_path):
        # Two injectors simulating two worker processes: the O_EXCL
        # marker files bound the *total* fires, even though each
        # process redraws the identical RNG stream.
        rules = parse_spec("x:error@1*2")
        a = FaultInjector(rules, seed=0, state_dir=tmp_path)
        b = FaultInjector(rules, seed=0, state_dir=tmp_path)
        fired = 0
        for inj in (a, b, a, b, a, b):
            try:
                inj.fire("x")
            except RuntimeError:
                fired += 1
        assert fired == 2
        assert len(list(tmp_path.glob("cap-x.error.*"))) == 2

    def test_fault_log_written(self, tmp_path):
        inj = FaultInjector(parse_spec("x:error@1*1"), state_dir=tmp_path)
        with pytest.raises(RuntimeError):
            inj.fire("x")
        logs = list(tmp_path.glob("faults-*.jsonl"))
        assert len(logs) == 1 and '"site": "x"' in logs[0].read_text()


class TestInstallation:
    def test_install_probe_uninstall(self):
        install("x:error@1", propagate=False)
        with pytest.raises(RuntimeError):
            injector_mod.probe("x")
        uninstall()
        injector_mod.probe("x")  # no-op again

    def test_env_propagation_round_trip(self):
        install("x:error@1*5", seed=3)
        assert os.environ[injector_mod.ENV_SPEC] == "x:error@1*5"
        assert os.environ[injector_mod.ENV_SEED] == "3"
        uninstall()
        assert injector_mod.ENV_SPEC not in os.environ

    def test_install_from_args_reuses_identical_config(self):
        inj = install("x:error@0.5", seed=9, propagate=False)
        again = install_from_args(inj.config_args())
        assert again is inj  # same RNG stream continues
        other = install_from_args(("x:error@0.5", 10, None))
        assert other is not inj

    def test_config_args_pickle_shape(self, tmp_path):
        inj = install(
            "x:error@0.5*2", seed=4, state_dir=tmp_path, propagate=False
        )
        assert inj.config_args() == ("x:error@0.5*2", 4, str(tmp_path))
        assert inj.spec == "x:error@0.5*2"


class TestRetryPolicy:
    def test_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(attempts=3, base_delay=0.001, jitter=0.0)
        assert call_with_retry(flaky, policy, "test") == "ok"
        assert len(calls) == 3

    def test_raises_after_exhaustion_and_counts_strikes(self):
        strikes = []
        policy = RetryPolicy(attempts=3, base_delay=0.001, jitter=0.0)
        with pytest.raises(OSError):
            call_with_retry(
                lambda: (_ for _ in ()).throw(OSError("down")),
                policy, "test",
                on_retry=lambda exc, attempt: strikes.append(attempt),
            )
        # on_retry observes every failure, including the final one.
        assert strikes == [0, 1, 2]

    def test_non_retryable_raises_immediately(self):
        calls = []

        def wrong():
            calls.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            call_with_retry(wrong, RetryPolicy(attempts=5), "test")
        assert len(calls) == 1

    def test_delay_is_exponential_capped_and_jittered(self):
        policy = RetryPolicy(
            attempts=9, base_delay=0.1, max_delay=0.5, jitter=0.0
        )
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(4) == pytest.approx(0.5)  # capped
        noisy = RetryPolicy(base_delay=0.1, jitter=0.5)
        d = noisy.delay(0)
        assert 0.1 <= d <= 0.15


class TestCircuitBreaker:
    def test_trip_reprobe_recover(self):
        now = [0.0]
        breaker = CircuitBreaker(
            "dep", failure_threshold=2, reset_timeout=10.0,
            clock=lambda: now[0],
        )
        assert breaker.allow() and breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "closed"  # one strike is not an outage
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # fail fast while open

        now[0] = 11.0  # reset timer elapses
        assert breaker.allow()  # the single half-open trial
        assert breaker.state == "half-open"
        assert not breaker.allow()  # only one trial in flight
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_trial_reopens(self):
        now = [0.0]
        breaker = CircuitBreaker(
            "dep", failure_threshold=1, reset_timeout=5.0,
            clock=lambda: now[0],
        )
        breaker.record_failure()
        now[0] = 6.0
        assert breaker.allow()
        breaker.record_failure()  # trial failed
        assert breaker.state == "open"
        assert not breaker.allow()  # timer restarted
        assert breaker.snapshot()["opens"] == 2

    def test_success_resets_strike_count(self):
        breaker = CircuitBreaker("dep", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # strikes did not accumulate

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("dep", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("dep", reset_timeout=0)


class TestTieredBreakerDegradation:
    def _tiered(self, tmp_path, shared=None):
        breaker = CircuitBreaker(
            "test.shared", failure_threshold=2, reset_timeout=0.05
        )
        retry = RetryPolicy(
            attempts=2, base_delay=0.001, jitter=0.0,
            retryable=(OSError, sqlite3.Error),
        )
        return TieredBackend(
            DiskBackend(tmp_path / "l1"),
            shared or SqliteBackend(tmp_path / "l2.db"),
            breaker=breaker,
            retry=retry,
        ), breaker

    def test_open_breaker_degrades_to_local_only(self, tmp_path):
        tiered, breaker = self._tiered(tmp_path)
        tiered.put("k", {"cache_layout": 1, "payload": {"v": 1}})
        assert tiered.get("k")["payload"] == {"v": 1}

        install("cache.get:io_error@1", propagate=False)
        # Shared-tier reads now fail; retries strike the breaker open.
        assert tiered.get("missing") is None
        assert tiered.get("missing") is None
        assert breaker.state == "open"
        # L1 still answers: the injected fault fires in _shared_call's
        # probe, but an open breaker skips the shared tier entirely.
        uninstall()
        assert tiered.get("k")["payload"] == {"v": 1}

    def test_half_open_reprobe_recovers(self, tmp_path):
        tiered, breaker = self._tiered(tmp_path)
        install("cache.get:io_error@1*4", propagate=False)
        tiered.get("a")
        tiered.get("b")
        assert breaker.state == "open"
        uninstall()  # the dependency "recovers"
        time.sleep(0.06)  # past reset_timeout
        tiered.put("k", {"cache_layout": 1, "payload": {"v": 2}})
        assert tiered.get("k")["payload"] == {"v": 2}
        assert breaker.state == "closed"


class TestWatchdogTimeout:
    def test_times_out_off_main_thread(self):
        # On a non-main thread SIGALRM cannot arm; the watchdog must
        # still enforce the budget.
        result = []

        def run():
            try:
                _with_timeout(lambda: time.sleep(5), 0.05)
            except JobTimeoutError as exc:
                result.append(str(exc))

        worker = threading.Thread(target=run)
        worker.start()
        worker.join(timeout=10)
        assert result and "watchdog" in result[0]

    def test_returns_value_and_propagates_errors(self):
        def run():
            out = _with_timeout(lambda: 42, 0.5)
            result.append(out)
            try:
                _with_timeout(
                    lambda: (_ for _ in ()).throw(ValueError("boom")), 0.5
                )
            except ValueError as exc:
                result.append(str(exc))

        result = []
        worker = threading.Thread(target=run)
        worker.start()
        worker.join(timeout=10)
        assert result == [42, "boom"]

    def test_main_thread_uses_sigalrm(self):
        with pytest.raises(JobTimeoutError) as err:
            _with_timeout(lambda: time.sleep(5), 0.05)
        assert "watchdog" not in str(err.value)
