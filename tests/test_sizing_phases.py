"""Tests for the SMP/W-phase, the D-phase and TILOS in isolation."""

import numpy as np
import pytest

from repro.balancing import balance
from repro.errors import SizingError
from repro.sizing import (
    TilosOptions,
    area_sensitivities,
    d_phase,
    require_feasible,
    tilos_size,
    w_phase,
)
from repro.sizing.dphase import build_dphase_lp
from repro.timing import GraphTimer, analyze


class TestWPhase:
    def test_budgets_met_exactly_when_binding(self, c17_gate_dag):
        dag = c17_gate_dag
        x_ref = dag.min_sizes() * 2.0
        budgets = dag.delays(x_ref)
        result = w_phase(dag, budgets)
        assert result.feasible
        assert np.all(result.delays <= budgets * (1 + 1e-9))

    def test_least_fixed_point_dominated_by_any_feasible(self, c17_gate_dag):
        """The W-phase x is componentwise <= any feasible sizing."""
        dag = c17_gate_dag
        rng = np.random.default_rng(10)
        x_ref = rng.uniform(2.0, 6.0, size=dag.n)
        budgets = dag.delays(x_ref)
        result = w_phase(dag, budgets)
        assert result.feasible
        assert np.all(result.x <= x_ref + 1e-9)

    def test_reproduces_reference_when_tight(self, adder8_dag):
        """Budgets from an interior sizing are reproduced exactly where
        the delay constraint binds above the lower bound."""
        dag = adder8_dag
        x_ref = np.full(dag.n, 3.0)
        budgets = dag.delays(x_ref)
        result = w_phase(dag, budgets)
        assert result.feasible
        # All x at 3.0 is feasible; the LFP can only be smaller.
        assert np.all(result.x <= 3.0 + 1e-9)
        # And its delays respect the budgets.
        assert np.all(result.delays <= budgets * (1 + 1e-9))

    def test_infeasible_budget_reports_clamped(self, c17_gate_dag):
        dag = c17_gate_dag
        budgets = dag.delays(dag.min_sizes())
        # Ask one heavily-loaded vertex for nearly-intrinsic delay: the
        # required size blows past the upper bound.
        victim = int(np.argmax(dag.model.b))
        budgets[victim] = dag.model.intrinsic[victim] + 1e-3
        result = w_phase(dag, budgets)
        assert not result.feasible
        assert victim in result.clamped

    def test_budget_below_intrinsic_raises(self, c17_gate_dag):
        dag = c17_gate_dag
        budgets = dag.delays(dag.min_sizes())
        budgets[0] = dag.model.intrinsic[0] * 0.5
        with pytest.raises(SizingError, match="intrinsic"):
            w_phase(dag, budgets)

    def test_transistor_mode_blocks_converge(self, c17_transistor_dag):
        dag = c17_transistor_dag
        x_ref = np.full(dag.n, 2.5)
        budgets = dag.delays(x_ref)
        result = w_phase(dag, budgets)
        assert result.feasible
        assert np.all(result.delays <= budgets * (1 + 1e-7))
        assert np.all(result.x <= 2.5 + 1e-6)


class TestAreaSensitivities:
    def test_positive(self, c17_gate_dag):
        x = c17_gate_dag.min_sizes() * 2
        c = area_sensitivities(c17_gate_dag, x)
        assert (c > 0).all()

    def test_solves_transposed_system(self, c17_gate_dag):
        """(D - A)^T y = w  =>  C = x * y  (checked against dense)."""
        dag = c17_gate_dag
        rng = np.random.default_rng(11)
        x = rng.uniform(1.5, 6.0, size=dag.n)
        c = area_sensitivities(dag, x)
        dense = np.diag(dag.model.load_delays(x)) - dag.model.a_matrix.toarray()
        y = np.linalg.solve(dense.T, dag.area_weight)
        assert c == pytest.approx(x * y)

    def test_transistor_mode_blocks(self, c17_transistor_dag):
        dag = c17_transistor_dag
        x = np.full(dag.n, 2.0)
        c = area_sensitivities(dag, x)
        dense = np.diag(dag.model.load_delays(x)) - dag.model.a_matrix.toarray()
        y = np.linalg.solve(dense.T, dag.area_weight)
        assert c == pytest.approx(x * y)

    def test_taylor_prediction_direction(self, c17_gate_dag):
        """Shrinking total area when budgets grow on high-C vertices:
        first-order prediction sum(C*dD) has the right sign."""
        dag = c17_gate_dag
        x = dag.min_sizes() * 3.0
        delays = dag.delays(x)
        c = area_sensitivities(dag, x)
        # Grow every budget by 1%: predicted area drop = sum(C*dD) > 0.
        budgets = delays * 1.01
        predicted = float(c @ (budgets - delays))
        result = w_phase(dag, budgets)
        actual_drop = dag.area(x) - dag.area(result.x)
        assert predicted > 0
        assert actual_drop > 0
        # First-order model within a factor ~2 for a 1% move.
        assert actual_drop == pytest.approx(predicted, rel=1.0)


class TestDPhase:
    def _setup(self, dag, scale=3.0):
        x = dag.min_sizes() * scale
        delays = dag.delays(x)
        timer = GraphTimer(dag)
        cp = timer.analyze(delays).critical_path_delay
        config = balance(dag, delays, horizon=cp)
        load = delays - dag.model.intrinsic
        return x, delays, config, load

    @pytest.mark.parametrize("backend", ["ssp", "networkx", "scipy"])
    def test_delta_within_trust_region(self, c17_gate_dag, backend):
        dag = c17_gate_dag
        x, delays, config, load = self._setup(dag)
        result = d_phase(
            dag, x, config, -0.2 * load, 0.2 * load, backend=backend
        )
        assert np.all(result.delta_d <= 0.2 * load + 1e-9)
        assert np.all(result.delta_d >= -0.2 * load - 1e-9)
        assert result.predicted_gain >= -1e-9

    @pytest.mark.parametrize("backend", ["ssp", "networkx", "scipy"])
    def test_budgets_remain_timing_safe(self, adder8_dag, backend):
        """After the D-phase, budgets still meet the horizon."""
        dag = adder8_dag
        x, delays, config, load = self._setup(dag, scale=2.0)
        result = d_phase(
            dag, x, config, -0.25 * load, 0.25 * load, backend=backend
        )
        budgets = delays + result.delta_d
        report = GraphTimer(dag).analyze(budgets)
        assert report.critical_path_delay <= config.horizon * (1 + 1e-6)

    def test_backends_agree(self, c17_gate_dag):
        dag = c17_gate_dag
        x, delays, config, load = self._setup(dag)
        gains = {}
        for backend in ("ssp", "networkx", "scipy"):
            result = d_phase(
                dag, x, config, -0.2 * load, 0.2 * load, backend=backend
            )
            gains[backend] = result.predicted_gain
        values = list(gains.values())
        assert values[0] == pytest.approx(values[1], rel=1e-6)
        assert values[0] == pytest.approx(values[2], rel=1e-6)

    def test_lp_structure(self, c17_gate_dag):
        dag = c17_gate_dag
        x, delays, config, load = self._setup(dag)
        sens = area_sensitivities(dag, x)
        lp = build_dphase_lp(
            dag, config, sens, -0.2 * load, 0.2 * load, 100.0, 1.0
        )
        # 2 constraints per vertex + 1 per wire edge + 1 per PO leaf.
        expected = 2 * dag.n + dag.n_edges + len(dag.po_vertices)
        assert len(lp.constraints) == expected
        # Weights antisymmetric: dummy +C, vertex -C.
        n = dag.n
        assert np.all(lp.weights[n : 2 * n] >= 0)
        assert np.all(lp.weights[:n] <= 0)

    def test_invalid_trust_region(self, c17_gate_dag):
        dag = c17_gate_dag
        x, delays, config, load = self._setup(dag)
        with pytest.raises(SizingError):
            d_phase(dag, x, config, 0.2 * load, -0.2 * load)


class TestTilos:
    def test_reaches_easy_target(self, c17_gate_dag):
        dag = c17_gate_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        result = require_feasible(tilos_size(dag, 0.8 * dmin))
        assert result.critical_path_delay <= 0.8 * dmin
        assert result.area >= dag.area(dag.min_sizes())

    def test_trivial_target_keeps_min_sizes(self, c17_gate_dag):
        dag = c17_gate_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        result = tilos_size(dag, dmin * 1.01)
        assert result.iterations == 0
        assert result.area == pytest.approx(dag.area(dag.min_sizes()))

    def test_area_monotone_in_target(self, adder8_dag):
        dag = adder8_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        areas = []
        for ratio in (0.9, 0.7, 0.5):
            result = require_feasible(tilos_size(dag, ratio * dmin))
            areas.append(result.area)
        assert areas[0] <= areas[1] <= areas[2]

    def test_impossible_target_returns_infeasible(self, c17_gate_dag):
        result = tilos_size(c17_gate_dag, 1.0)  # 1 ps: impossible
        assert not result.feasible
        with pytest.raises(Exception):
            require_feasible(result)

    def test_bump_validation(self):
        with pytest.raises(SizingError):
            TilosOptions(bump=0.9)
        with pytest.raises(SizingError):
            TilosOptions(batch=0)

    def test_batch_mode_converges(self, adder8_dag):
        dag = adder8_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        single = require_feasible(tilos_size(dag, 0.6 * dmin))
        batched = require_feasible(
            tilos_size(dag, 0.6 * dmin, TilosOptions(batch=4))
        )
        assert batched.iterations <= single.iterations

    def test_trace_records_cp(self, c17_gate_dag):
        dag = c17_gate_dag
        dmin = analyze(dag, dag.min_sizes()).critical_path_delay
        result = tilos_size(dag, 0.7 * dmin, keep_trace=True)
        assert len(result.trace) == result.iterations + 1
        assert result.trace[-1] <= 0.7 * dmin
