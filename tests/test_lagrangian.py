"""Tests for the Lagrangian-relaxation baseline (paper reference [8])."""

import numpy as np
import pytest

from repro.errors import InfeasibleTimingError, SizingError
from repro.sizing import minflotransit
from repro.sizing.lagrangian import (
    LagrangianOptions,
    lagrangian_size,
)
from repro.timing import analyze


class TestLagrangianSizer:
    def test_meets_timing(self, c17_gate_dag):
        dag = c17_gate_dag
        d_min = analyze(dag, dag.min_sizes()).critical_path_delay
        result = lagrangian_size(dag, 0.5 * d_min)
        assert result.meets_target
        assert np.all(result.x >= dag.lower - 1e-12)
        assert np.all(result.x <= dag.upper + 1e-12)

    def test_close_to_minflotransit(self, c17_gate_dag):
        """Two independent (near-)exact methods agree on the optimum."""
        dag = c17_gate_dag
        d_min = analyze(dag, dag.min_sizes()).critical_path_delay
        target = 0.5 * d_min
        lr = lagrangian_size(dag, target)
        mf = minflotransit(dag, target)
        assert lr.area <= mf.area * 1.10
        assert mf.area <= lr.area * 1.10

    def test_adder_agreement(self, adder8_dag):
        dag = adder8_dag
        d_min = analyze(dag, dag.min_sizes()).critical_path_delay
        target = 0.55 * d_min
        lr = lagrangian_size(dag, target)
        mf = minflotransit(dag, target)
        assert lr.meets_target
        assert lr.area == pytest.approx(mf.area, rel=0.10)

    def test_loose_target_stays_near_min_area(self, c17_gate_dag):
        dag = c17_gate_dag
        d_min = analyze(dag, dag.min_sizes()).critical_path_delay
        result = lagrangian_size(dag, 1.2 * d_min)
        assert result.area <= dag.area(dag.min_sizes()) * 1.05

    def test_intrinsic_floor_detected(self, c17_gate_dag):
        with pytest.raises(InfeasibleTimingError, match="floor"):
            lagrangian_size(c17_gate_dag, 1.0)

    def test_options_validation(self):
        with pytest.raises(SizingError):
            LagrangianOptions(max_iterations=0)
        with pytest.raises(SizingError):
            LagrangianOptions(initial_step=0.0)

    def test_relaxed_area_reported(self, c17_gate_dag):
        dag = c17_gate_dag
        d_min = analyze(dag, dag.min_sizes()).critical_path_delay
        result = lagrangian_size(dag, 0.6 * d_min)
        assert result.relaxed_area > 0
        assert result.iterations >= 1
