"""Tests for the min-cost flow substrate and the LP duality layer."""

import numpy as np
import pytest

from repro.errors import FlowError, InfeasibleFlowError
from repro.flow import (
    DifferenceConstraintLP,
    FlowProblem,
    SolveStats,
    check_flow_feasible,
    check_flow_optimal,
    get_backend,
    ground_flow,
    integerize_supplies,
    integerize_values,
    registered_backends,
    select_backend,
    solve_difference_lp,
    solve_ssp,
    solve_ssp_reference,
    solver_statistics,
)

BACKENDS = ("ssp", "ssp-legacy", "networkx", "scipy")


class TestSspSolver:
    def test_single_path(self):
        problem = FlowProblem(n_nodes=3)
        problem.add_arc(0, 1, cost=2.0)
        problem.add_arc(1, 2, cost=3.0)
        problem.add_supply(0, 4.0)
        problem.add_supply(2, -4.0)
        solution = solve_ssp(problem)
        assert solution.total_cost == pytest.approx(20.0)
        check_flow_optimal(solution)

    def test_chooses_cheaper_route(self):
        problem = FlowProblem(n_nodes=4)
        problem.add_arc(0, 1, cost=1.0)
        problem.add_arc(1, 3, cost=1.0)
        problem.add_arc(0, 2, cost=5.0)
        problem.add_arc(2, 3, cost=5.0)
        problem.add_supply(0, 2.0)
        problem.add_supply(3, -2.0)
        solution = solve_ssp(problem)
        assert solution.total_cost == pytest.approx(4.0)
        assert solution.flow[0] == pytest.approx(2.0)
        assert solution.flow[2] == pytest.approx(0.0)

    def test_capacity_forces_split(self):
        problem = FlowProblem(n_nodes=4)
        problem.add_arc(0, 1, cost=1.0, capacity=1.0)
        problem.add_arc(1, 3, cost=1.0)
        problem.add_arc(0, 2, cost=5.0)
        problem.add_arc(2, 3, cost=5.0)
        problem.add_supply(0, 2.0)
        problem.add_supply(3, -2.0)
        solution = solve_ssp(problem)
        assert solution.total_cost == pytest.approx(2.0 + 10.0)
        check_flow_optimal(solution)

    def test_infeasible_raises(self):
        problem = FlowProblem(n_nodes=3)
        problem.add_arc(0, 1, cost=1.0)
        # No arc into node 2 but it demands flow.
        problem.add_supply(0, 1.0)
        problem.add_supply(2, -1.0)
        with pytest.raises(InfeasibleFlowError):
            solve_ssp(problem)

    def test_unbalanced_supplies_rejected(self):
        problem = FlowProblem(n_nodes=2)
        problem.add_arc(0, 1, cost=1.0)
        problem.add_supply(0, 2.0)
        problem.add_supply(1, -1.0)
        with pytest.raises(FlowError, match="balance"):
            solve_ssp(problem)

    def test_negative_cost_requires_flag(self):
        problem = FlowProblem(n_nodes=2)
        problem.add_arc(0, 1, cost=-1.0)
        problem.add_supply(0, 1.0)
        problem.add_supply(1, -1.0)
        with pytest.raises(FlowError, match="negative"):
            solve_ssp(problem)
        solution = solve_ssp(problem, allow_negative=True)
        assert solution.total_cost == pytest.approx(-1.0)

    def test_potentials_certify_optimality(self):
        rng = np.random.default_rng(8)
        for trial in range(5):
            problem = _random_instance(rng, n=12, arcs=36)
            solution = solve_ssp(problem)
            check_flow_optimal(solution)

    def test_array_engine_matches_reference(self):
        rng = np.random.default_rng(17)
        for trial in range(6):
            problem = _random_instance(rng, n=14, arcs=44)
            fast = solve_ssp(problem)
            slow = solve_ssp_reference(problem)
            assert fast.total_cost == pytest.approx(slow.total_cost)
            check_flow_optimal(fast)
            check_flow_optimal(slow)

    def test_many_parallel_arcs_need_many_rounds(self):
        # Regression: each round saturates one tight parallel arc, so
        # the round count scales with arcs, not nodes; the runaway
        # guard must not trip on legitimate arc-dense instances.
        problem = FlowProblem(n_nodes=2)
        for cost in range(100):
            problem.add_arc(0, 1, cost=float(cost), capacity=1.0)
        problem.add_supply(0, 100.0)
        problem.add_supply(1, -100.0)
        solution = solve_ssp(problem)
        assert solution.total_cost == pytest.approx(sum(range(100)))
        check_flow_optimal(solution)

    def test_array_engine_reports_stats(self):
        problem = FlowProblem(n_nodes=3)
        problem.add_arc(0, 1, cost=2.0)
        problem.add_arc(1, 2, cost=3.0)
        problem.add_supply(0, 4.0)
        problem.add_supply(2, -4.0)
        solution = solve_ssp(problem)
        assert solution.stats is not None
        assert solution.stats.augmentations >= 1
        assert solution.stats.sp_rounds >= 1

    def test_feasibility_checker_catches_bad_flow(self):
        problem = FlowProblem(n_nodes=2)
        problem.add_arc(0, 1, cost=1.0)
        problem.add_supply(0, 1.0)
        problem.add_supply(1, -1.0)
        solution = solve_ssp(problem)
        solution.flow[0] = 5.0  # corrupt
        with pytest.raises(FlowError, match="conservation"):
            check_flow_feasible(solution)


def _random_instance(rng, n=10, arcs=30) -> FlowProblem:
    """Random feasible instance: supplies routed over a connected ring
    plus random chords, all with integer costs."""
    problem = FlowProblem(n_nodes=n)
    for i in range(n):
        problem.add_arc(i, (i + 1) % n, cost=float(rng.integers(1, 10)))
    for _ in range(arcs - n):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            problem.add_arc(int(u), int(v), cost=float(rng.integers(0, 20)))
    amounts = rng.integers(1, 5, size=n // 2).astype(float)
    for k, amount in enumerate(amounts):
        problem.add_supply(k, float(amount))
        problem.add_supply(n - 1 - k, -float(amount))
    return problem


class TestDifferenceLP:
    def _small_lp(self) -> DifferenceConstraintLP:
        """max r1 - r2 s.t. r1 - r0 <= 2, r1 - r2 <= 3, r2 - r0 <= 0,
        r0 pinned."""
        lp = DifferenceConstraintLP(
            n_nodes=3,
            weights=np.array([0.0, 1.0, -1.0]),
            pinned=frozenset({0}),
        )
        lp.add(1, 0, 2.0)
        lp.add(1, 2, 3.0)
        lp.add(2, 0, 0.0)
        # r2 >= -1 comes from: r0 - r2 <= 1.
        lp.add(0, 2, 1.0)
        return lp

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_small_lp_optimum(self, backend):
        lp = self._small_lp()
        solution = solve_difference_lp(lp, backend=backend)
        # Optimum: r1 = 2, r2 = -1 -> objective 3.
        assert solution.objective == pytest.approx(3.0)
        assert solution.r[0] == pytest.approx(0.0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_agree_on_random_instances(self, backend):
        rng = np.random.default_rng(9)
        for trial in range(4):
            lp = _random_lp(rng, n=14)
            reference = solve_difference_lp(lp, backend="scipy")
            solution = solve_difference_lp(lp, backend=backend)
            assert solution.objective == pytest.approx(
                reference.objective, rel=1e-6
            )
            lp.check_feasible(solution.r)

    def test_pinned_pinned_violation(self):
        lp = DifferenceConstraintLP(
            n_nodes=2,
            weights=np.array([0.0, 0.0]),
            pinned=frozenset({0, 1}),
        )
        lp.add(0, 1, -5.0)  # 0 <= -5: impossible
        with pytest.raises(InfeasibleFlowError):
            solve_difference_lp(lp, backend="scipy")

    def test_unknown_backend(self):
        lp = self._small_lp()
        with pytest.raises(FlowError, match="backend"):
            solve_difference_lp(lp, backend="cplex")

    def test_ground_flow_balances(self):
        lp = self._small_lp()
        grounded = ground_flow(lp)
        assert grounded.problem.supply.sum() == pytest.approx(0.0)
        # Constraints between two pinned nodes vanish; others survive.
        assert grounded.problem.n_nodes == 3  # r1, r2, ground


def _random_lp(rng, n=12) -> DifferenceConstraintLP:
    """Random bounded difference LP over a line graph plus chords.

    Bounds every variable against the pinned node 0 in both directions
    so no backend can be unbounded.
    """
    weights = rng.integers(-5, 6, size=n).astype(float)
    lp = DifferenceConstraintLP(
        n_nodes=n, weights=weights, pinned=frozenset({0})
    )
    for v in range(1, n):
        lp.add(v, 0, float(rng.integers(0, 10)))
        lp.add(0, v, float(rng.integers(0, 10)))
    for _ in range(2 * n):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            lp.add(int(u), int(v), float(rng.integers(0, 12)))
    return lp


class TestBackendRegistry:
    def test_canonical_backends_registered(self):
        names = {backend.name for backend in registered_backends()}
        assert {"ssp", "ssp-legacy", "networkx", "scipy"} <= names

    def test_get_backend_unknown_name(self):
        with pytest.raises(FlowError, match="registered"):
            get_backend("cplex")

    def test_auto_selection_prefers_native_on_small_instances(self):
        assert select_backend(n_constraints=10).name == "ssp"

    def test_auto_selection_respects_size_caps(self):
        big = select_backend(n_constraints=1_000_000)
        cap = big.capabilities.max_constraints
        assert cap is None or cap >= 1_000_000

    def test_auto_selection_falls_back_when_deps_missing(self):
        # Regression: with every in-cap backend unavailable (no scipy
        # on a big instance), auto must fall back to an available
        # backend instead of refusing to solve.
        from dataclasses import replace as dc_replace

        from repro.flow import register_backend

        originals = {
            name: get_backend(name) for name in ("scipy", "networkx")
        }
        try:
            for name, backend in originals.items():
                register_backend(
                    dc_replace(backend, available=lambda: False)
                )
            chosen = select_backend(n_constraints=30_000)
            assert chosen.name == "ssp"
        finally:
            for backend in originals.values():
                register_backend(backend)

    def test_capability_metadata(self):
        ssp = get_backend("ssp")
        assert ssp.capabilities.native
        assert ssp.capabilities.returns_duals
        assert ssp.capabilities.exact_integer
        scipy_backend = get_backend("scipy")
        assert not scipy_backend.capabilities.native

    def test_stats_recorded_on_every_solve(self):
        lp = DifferenceConstraintLP(
            n_nodes=3,
            weights=np.array([0.0, 1.0, -1.0]),
            pinned=frozenset({0}),
        )
        lp.add(1, 0, 2.0)
        lp.add(0, 2, 1.0)
        lp.add(1, 2, 3.0)
        lp.add(2, 0, 0.0)
        before = solver_statistics().get("ssp")
        solves_before = before.solves if before else 0
        solution = solve_difference_lp(lp, backend="ssp")
        assert isinstance(solution.stats, SolveStats)
        assert solution.stats.backend == "ssp"
        assert solution.stats.n_arcs == 4
        assert solution.stats.wall_time_s >= 0.0
        after = solver_statistics()["ssp"]
        assert after.solves == solves_before + 1


class TestIntegerizePolicy:
    def test_nearest_and_floor_modes(self):
        values = np.array([1.4, 1.5, -1.2, 2.0])
        assert integerize_values(values).tolist() == [1.0, 2.0, -1.0, 2.0]
        assert integerize_values(values, mode="floor").tolist() == [
            1.0, 1.0, -2.0, 2.0,
        ]

    def test_unknown_mode_rejected(self):
        with pytest.raises(FlowError, match="rounding"):
            integerize_values(np.array([1.0]), mode="ceil")

    def test_supply_rounding_preserves_balance(self):
        supplies = np.array([2.4, -1.2, 0.4, -1.6])  # sums to 0
        rounded = integerize_supplies(supplies, ground=3)
        assert rounded.sum() == 0
        assert rounded.dtype == np.int64
        # Non-ground nodes moved by at most the rounding itself.
        assert np.all(np.abs(rounded[:3] - supplies[:3]) <= 0.5)
