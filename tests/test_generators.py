"""Functional and structural tests for the benchmark generators."""

import random

import pytest

from repro.circuit import circuit_stats
from repro.generators import (
    SUITE,
    adder_comparator,
    alu,
    array_multiplier,
    build_circuit,
    interrupt_controller,
    random_logic,
    ripple_carry_adder,
    sec_corrector,
    sec_ded_corrector,
)
from repro.errors import NetlistError


def _bus(prefix, width, value):
    return {f"{prefix}[{i}]": bool(value >> i & 1) for i in range(width)}


def _read_bus(values, prefix, width, outputs):
    return sum(1 << i for i in range(width) if values[f"{prefix}[{i}]"])


class TestAdders:
    @pytest.mark.parametrize("style", ["macro", "nand", "mapped"])
    def test_addition_exhaustive_3bit(self, style):
        circuit = ripple_carry_adder(3, style=style)
        for a in range(8):
            for b in range(8):
                for cin in (0, 1):
                    ins = _bus("a", 3, a) | _bus("b", 3, b) | {"cin": bool(cin)}
                    values = circuit.evaluate(ins)
                    got = _read_bus(values, "sum", 3, circuit.outputs)
                    got += values["cout"] << 3
                    assert got == a + b + cin

    def test_adder_width_validation(self):
        with pytest.raises(NetlistError):
            ripple_carry_adder(0)

    def test_mapped_adder_is_primitive(self):
        from repro.circuit import is_primitive_circuit

        assert is_primitive_circuit(ripple_carry_adder(4, style="mapped"))

    def test_adder32_gate_count_near_paper(self):
        stats = circuit_stats(ripple_carry_adder(32))
        assert 400 <= stats.n_gates <= 560  # paper: 480


class TestMultiplier:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_multiplication_exhaustive(self, width):
        circuit = array_multiplier(width)
        for a in range(1 << width):
            for b in range(1 << width):
                ins = _bus("a", width, a) | _bus("b", width, b)
                values = circuit.evaluate(ins)
                got = _read_bus(values, "p", 2 * width, circuit.outputs)
                assert got == a * b, (a, b, got)

    def test_width_validation(self):
        with pytest.raises(NetlistError):
            array_multiplier(1)

    def test_c6288eq_scale(self):
        stats = circuit_stats(build_circuit("c6288eq"))
        assert 2100 <= stats.n_gates <= 2800  # paper: 2416
        # The multiplier is the reconvergent-path stress case.
        assert stats.logic_depth >= 40


class TestEcc:
    def test_sec_corrects_single_errors(self):
        width = 8
        circuit = sec_corrector(data_width=width)
        k = len([n for n in circuit.inputs if n.startswith("c[")])
        rng = random.Random(1)
        for _ in range(20):
            data = rng.randrange(1 << width)
            # Compute the correct check bits (even parity per syndrome).
            checks = 0
            for j in range(k):
                parity = 0
                for i in range(width):
                    if (i + 1) >> j & 1 and data >> i & 1:
                        parity ^= 1
                checks |= parity << j
            flip = rng.randrange(width)
            corrupted = data ^ (1 << flip)
            ins = _bus("d", width, corrupted) | _bus("c", k, checks)
            values = circuit.evaluate(ins)
            got = _read_bus(values, "q", width, circuit.outputs)
            assert got == data, (data, flip, got)

    def test_sec_passes_clean_words(self):
        width = 8
        circuit = sec_corrector(data_width=width)
        k = len([n for n in circuit.inputs if n.startswith("c[")])
        for data in (0, 1, 170, 255):
            checks = 0
            for j in range(k):
                parity = 0
                for i in range(width):
                    if (i + 1) >> j & 1 and data >> i & 1:
                        parity ^= 1
                checks |= parity << j
            ins = _bus("d", width, data) | _bus("c", k, checks)
            got = _read_bus(circuit.evaluate(ins), "q", width, circuit.outputs)
            assert got == data

    def test_c499_c1355_relationship(self):
        """c1355eq is exactly c499eq mapped to primitives."""
        c499 = build_circuit("c499eq")
        c1355 = build_circuit("c1355eq")
        assert c1355.n_gates > c499.n_gates
        assert c1355.device_count() == c499.device_count()
        rng = random.Random(2)
        for _ in range(5):
            ins = {net: rng.random() < 0.5 for net in c499.inputs}
            va, vb = c499.evaluate(ins), c1355.evaluate(ins)
            for out in c499.outputs:
                assert va[out] == vb[out]

    def test_sec_ded_flags(self):
        circuit = sec_ded_corrector(data_width=8, mapped=False)
        # All-zero word with correct (zero) checks: no error flags.
        ins = {net: False for net in circuit.inputs}
        values = circuit.evaluate(ins)
        assert values["err_single"] is False
        assert values["err_double"] is False


class TestAlu:
    def test_alu_add_and_logic(self):
        width = 4
        circuit = alu(width=width, mapped=False)
        rng = random.Random(3)
        ops = {
            (False, False): lambda a, b: (a + b) & 15,
            (False, True): lambda a, b: a & b,
            (True, False): lambda a, b: a | b,
            (True, True): lambda a, b: a ^ b,
        }
        for _ in range(25):
            a, b = rng.randrange(16), rng.randrange(16)
            for (op1, op0), fn in ops.items():
                ins = _bus("a", width, a) | _bus("b", width, b)
                ins |= {"sub": False, "op0": op0, "op1": op1}
                values = circuit.evaluate(ins)
                got = _read_bus(values, "f", width, circuit.outputs)
                assert got == fn(a, b), (a, b, op1, op0)

    def test_alu_subtract(self):
        circuit = alu(width=4, mapped=False)
        for a, b in ((9, 4), (3, 7), (15, 15)):
            ins = _bus("a", 4, a) | _bus("b", 4, b)
            ins |= {"sub": True, "op0": False, "op1": False}
            got = _read_bus(circuit.evaluate(ins), "f", 4, circuit.outputs)
            assert got == (a - b) & 15

    def test_zero_flag(self):
        circuit = alu(width=4, mapped=False)
        ins = _bus("a", 4, 0) | _bus("b", 4, 0)
        ins |= {"sub": False, "op0": False, "op1": False}
        assert circuit.evaluate(ins)["zero"] is True


class TestComparator:
    def test_comparison_outputs(self):
        circuit = adder_comparator(width=6, mapped=False)
        rng = random.Random(4)
        for _ in range(40):
            a, b = rng.randrange(64), rng.randrange(64)
            ins = _bus("a", 6, a) | _bus("b", 6, b) | {"cin": False}
            values = circuit.evaluate(ins)
            assert values["a_gt_b"] == (a > b)
            assert values["a_eq_b"] == (a == b)
            assert values["a_lt_b"] == (a < b)
            got = _read_bus(values, "sum", 6, circuit.outputs)
            got += values["cout"] << 6
            assert got == a + b


class TestController:
    def test_priority_grant(self):
        circuit = interrupt_controller(n_groups=2, group_width=4, mapped=False)
        # Request channels 2 and 5, no masks: channel 2 wins (code 010).
        ins = {net: False for net in circuit.inputs}
        ins["req0[2]"] = True
        ins["req1[1]"] = True
        values = circuit.evaluate(ins)
        code = sum(
            1 << b for b in range(3) if values.get(f"vec[{b}]", False)
        )
        assert code == 2
        assert values["irq"] is True
        assert values["gnt"] is True

    def test_mask_blocks_group(self):
        circuit = interrupt_controller(n_groups=2, group_width=4, mapped=False)
        ins = {net: False for net in circuit.inputs}
        ins["req0[2]"] = True
        ins["mask[0]"] = True  # group 0 masked; nothing pending
        values = circuit.evaluate(ins)
        assert values["irq"] is False

    def test_lower_channel_wins(self):
        circuit = interrupt_controller(n_groups=1, group_width=6, mapped=False)
        ins = {net: False for net in circuit.inputs}
        ins["req0[1]"] = True
        ins["req0[4]"] = True
        values = circuit.evaluate(ins)
        code = sum(
            1 << b for b in range(3) if values.get(f"vec[{b}]", False)
        )
        assert code == 1


class TestRandomLogic:
    def test_deterministic(self):
        from repro.circuit import dumps_bench

        first = random_logic(150, seed=42)
        second = random_logic(150, seed=42)
        assert dumps_bench(first) == dumps_bench(second)

    def test_different_seeds_differ(self):
        from repro.circuit import dumps_bench

        assert dumps_bench(random_logic(150, seed=1)) != dumps_bench(
            random_logic(150, seed=2)
        )

    def test_no_dangling(self):
        from repro.circuit.validate import validate_circuit

        circuit = random_logic(200, seed=5)
        kinds = {lint.kind for lint in validate_circuit(circuit)}
        assert "dangling-output" not in kinds


class TestSuiteRegistry:
    def test_all_smoke_rows_build(self):
        for spec in SUITE:
            if spec.tier == "smoke":
                circuit = spec.builder()
                assert circuit.n_gates > 0

    def test_gate_counts_documented(self):
        """Generated circuits stay within 2x of the paper's gate counts
        (the exact figure is recorded in EXPERIMENTS.md)."""
        for spec in SUITE:
            if spec.tier != "smoke":
                continue
            stats = circuit_stats(spec.builder())
            ratio = stats.n_gates / spec.paper_gates
            assert 0.4 <= ratio <= 2.2, (spec.name, stats.n_gates)

    def test_unknown_name(self):
        with pytest.raises(NetlistError):
            build_circuit("c9999")
