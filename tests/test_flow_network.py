"""Edge-case tests for the flow-instance layer and error hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro.flow import Arc, FlowProblem, solve_ssp
from repro.flow.verify import check_flow_optimal


class TestArcValidation:
    def test_negative_capacity(self):
        with pytest.raises(errors.FlowError, match="capacity"):
            Arc(0, 1, cost=1.0, capacity=-2.0)

    def test_uncapacitated_default(self):
        assert Arc(0, 1, cost=1.0).capacity is None


class TestFlowProblem:
    def test_endpoint_range_checked(self):
        problem = FlowProblem(n_nodes=2)
        with pytest.raises(errors.FlowError, match="range"):
            problem.add_arc(0, 5, cost=1.0)

    def test_supply_shape_checked(self):
        with pytest.raises(errors.FlowError, match="shape"):
            FlowProblem(n_nodes=3, supply=np.zeros(2))

    def test_total_positive_supply(self):
        problem = FlowProblem(n_nodes=3)
        problem.add_supply(0, 2.0)
        problem.add_supply(1, 3.0)
        problem.add_supply(2, -5.0)
        assert problem.total_positive_supply == pytest.approx(5.0)

    def test_zero_supply_trivial_solve(self):
        problem = FlowProblem(n_nodes=2)
        problem.add_arc(0, 1, cost=3.0)
        solution = solve_ssp(problem)
        assert solution.total_cost == 0.0
        check_flow_optimal(solution)

    def test_parallel_arcs_allowed(self):
        problem = FlowProblem(n_nodes=2)
        problem.add_arc(0, 1, cost=5.0)
        problem.add_arc(0, 1, cost=1.0)
        problem.add_supply(0, 2.0)
        problem.add_supply(1, -2.0)
        solution = solve_ssp(problem)
        # All flow takes the cheap copy.
        assert solution.flow[1] == pytest.approx(2.0)
        assert solution.flow[0] == pytest.approx(0.0)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        leaves = [
            errors.NetlistError,
            errors.BenchFormatError,
            errors.TechnologyError,
            errors.DelayModelError,
            errors.TimingError,
            errors.BalancingError,
            errors.FlowError,
            errors.InfeasibleFlowError,
            errors.UnboundedFlowError,
            errors.SizingError,
            errors.InfeasibleTimingError,
            errors.ConvergenceError,
        ]
        for exc in leaves:
            assert issubclass(exc, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.BenchFormatError, errors.NetlistError)
        assert issubclass(errors.InfeasibleFlowError, errors.FlowError)
        assert issubclass(errors.InfeasibleTimingError, errors.SizingError)

    def test_catchable_as_library_error(self, c17_gate_dag):
        from repro.sizing import minflotransit

        with pytest.raises(errors.ReproError):
            minflotransit(c17_gate_dag, 0.001)
