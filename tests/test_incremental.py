"""Tests for incremental arrival-time maintenance and its TILOS use."""

import numpy as np
import pytest

from repro.sizing import TilosOptions, tilos_size
from repro.timing import GraphTimer, analyze
from repro.timing.incremental import IncrementalArrivalTimes


class TestIncrementalEngine:
    def test_initial_state_matches_full(self, adder8_dag):
        rng = np.random.default_rng(20)
        delay = rng.uniform(0.5, 4.0, size=adder8_dag.n)
        inc = IncrementalArrivalTimes(adder8_dag, delay)
        full = GraphTimer(adder8_dag).analyze(delay)
        assert inc.at == pytest.approx(full.at)
        assert inc.critical_path_delay == pytest.approx(
            full.critical_path_delay
        )

    def test_random_update_sequences_match_full(self, adder8_dag):
        rng = np.random.default_rng(21)
        delay = rng.uniform(0.5, 4.0, size=adder8_dag.n)
        inc = IncrementalArrivalTimes(adder8_dag, delay)
        timer = GraphTimer(adder8_dag)
        for _ in range(60):
            k = int(rng.integers(1, 4))
            changed = rng.integers(0, adder8_dag.n, size=k).tolist()
            delay = delay.copy()
            delay[changed] = rng.uniform(0.2, 6.0, size=k)
            inc.update_delays(changed, delay)
            full = timer.analyze(delay)
            assert inc.at == pytest.approx(full.at), "arrival drift"
            assert inc.critical_path_delay == pytest.approx(
                full.critical_path_delay
            )

    def test_decreasing_delays_propagate(self, c17_gate_dag):
        """Arrival times must also *fall* when a delay shrinks."""
        delay = np.full(c17_gate_dag.n, 5.0)
        inc = IncrementalArrivalTimes(c17_gate_dag, delay)
        before = inc.critical_path_delay
        path = inc.critical_path()
        delay = delay.copy()
        delay[path[0]] = 1.0
        inc.update_delays([path[0]], delay)
        full = GraphTimer(c17_gate_dag).analyze(delay)
        assert inc.critical_path_delay == pytest.approx(
            full.critical_path_delay
        )
        assert inc.critical_path_delay <= before

    def test_critical_path_valid(self, adder8_dag):
        rng = np.random.default_rng(22)
        delay = rng.uniform(0.5, 4.0, size=adder8_dag.n)
        inc = IncrementalArrivalTimes(adder8_dag, delay)
        path = inc.critical_path()
        total = sum(delay[v] for v in path)
        assert total == pytest.approx(inc.critical_path_delay)


class TestTilosEngines:
    @pytest.mark.parametrize("circuit_fixture", ["c17_gate_dag", "adder8_dag"])
    def test_engines_identical(self, request, circuit_fixture):
        dag = request.getfixturevalue(circuit_fixture)
        d_min = analyze(dag, dag.min_sizes()).critical_path_delay
        target = 0.55 * d_min
        full = tilos_size(dag, target, TilosOptions(engine="full"))
        fast = tilos_size(dag, target, TilosOptions(engine="incremental"))
        assert full.feasible == fast.feasible
        assert fast.iterations == full.iterations
        assert fast.x == pytest.approx(full.x)
        assert fast.area == pytest.approx(full.area)

    def test_transistor_mode_engines_identical(self, c17_transistor_dag):
        dag = c17_transistor_dag
        d_min = analyze(dag, dag.min_sizes()).critical_path_delay
        target = 0.6 * d_min
        full = tilos_size(dag, target, TilosOptions(engine="full"))
        fast = tilos_size(dag, target, TilosOptions(engine="incremental"))
        assert fast.x == pytest.approx(full.x)

    def test_engine_validation(self):
        from repro.errors import SizingError

        with pytest.raises(SizingError, match="engine"):
            TilosOptions(engine="warp")
