"""Tests for incremental AT/RT maintenance and its TILOS use."""

import numpy as np
import pytest

from repro.sizing import TilosOptions, tilos_size
from repro.timing import GraphTimer, analyze
from repro.timing.incremental import (
    SCALAR_SEED_LIMIT,
    IncrementalArrivalTimes,
    IncrementalTimer,
)


def assert_matches_full(inc, timer, delay, horizon=None):
    """Incremental state must equal a from-scratch analysis.

    Arrival times are bitwise identical; required times agree up to
    float re-association noise (the engine stores them horizon-free).
    """
    full = timer.analyze(delay, horizon=horizon)
    np.testing.assert_array_equal(inc.at, full.at)
    assert inc.critical_path_delay == full.critical_path_delay
    rt = inc.required_times(full.horizon)
    finite = np.isfinite(full.rt)
    tol = 1e-9 * max(full.horizon, 1.0)
    np.testing.assert_array_equal(finite, np.isfinite(rt))
    assert np.allclose(rt[finite], full.rt[finite], rtol=0.0, atol=tol)
    slack = inc.slack(full.horizon)
    assert np.allclose(
        slack[finite], full.slack[finite], rtol=0.0, atol=tol
    )


class TestIncrementalEngine:
    def test_initial_state_matches_full(self, adder8_dag):
        rng = np.random.default_rng(20)
        delay = rng.uniform(0.5, 4.0, size=adder8_dag.n)
        inc = IncrementalArrivalTimes(adder8_dag, delay)
        full = GraphTimer(adder8_dag).analyze(delay)
        assert inc.at == pytest.approx(full.at)
        assert inc.critical_path_delay == pytest.approx(
            full.critical_path_delay
        )

    def test_random_update_sequences_match_full(self, adder8_dag):
        rng = np.random.default_rng(21)
        delay = rng.uniform(0.5, 4.0, size=adder8_dag.n)
        inc = IncrementalArrivalTimes(adder8_dag, delay)
        timer = GraphTimer(adder8_dag)
        for _ in range(60):
            k = int(rng.integers(1, 4))
            changed = rng.integers(0, adder8_dag.n, size=k).tolist()
            delay = delay.copy()
            delay[changed] = rng.uniform(0.2, 6.0, size=k)
            inc.update_delays(changed, delay)
            full = timer.analyze(delay)
            assert inc.at == pytest.approx(full.at), "arrival drift"
            assert inc.critical_path_delay == pytest.approx(
                full.critical_path_delay
            )

    def test_decreasing_delays_propagate(self, c17_gate_dag):
        """Arrival times must also *fall* when a delay shrinks."""
        delay = np.full(c17_gate_dag.n, 5.0)
        inc = IncrementalArrivalTimes(c17_gate_dag, delay)
        before = inc.critical_path_delay
        path = inc.critical_path()
        delay = delay.copy()
        delay[path[0]] = 1.0
        inc.update_delays([path[0]], delay)
        full = GraphTimer(c17_gate_dag).analyze(delay)
        assert inc.critical_path_delay == pytest.approx(
            full.critical_path_delay
        )
        assert inc.critical_path_delay <= before

    def test_critical_path_valid(self, adder8_dag):
        rng = np.random.default_rng(22)
        delay = rng.uniform(0.5, 4.0, size=adder8_dag.n)
        inc = IncrementalArrivalTimes(adder8_dag, delay)
        path = inc.critical_path()
        total = sum(delay[v] for v in path)
        assert total == pytest.approx(inc.critical_path_delay)


class TestRequiredTimes:
    """AT/RT/slack parity with from-scratch STA (the tentpole contract)."""

    @pytest.mark.parametrize(
        "circuit_fixture", ["c17_gate_dag", "adder8_dag", "c17_transistor_dag"]
    )
    def test_random_update_sequences(self, request, circuit_fixture):
        dag = request.getfixturevalue(circuit_fixture)
        rng = np.random.default_rng(31)
        delay = rng.uniform(0.5, 4.0, size=dag.n)
        inc = IncrementalTimer(dag, delay)
        timer = GraphTimer(dag)
        for _ in range(80):
            k = int(rng.integers(1, max(2, dag.n // 3)))
            changed = rng.integers(0, dag.n, size=k).tolist()
            delay = delay.copy()
            delay[changed] = rng.uniform(0.2, 6.0, size=k)
            inc.update_delays(changed, delay)
            assert_matches_full(inc, timer, delay)

    def test_scalar_and_vector_paths_agree(self, adder8_dag):
        """Small seeds (heap walk) and bulk seeds (CSR waves) must
        produce the same state as full STA — and as each other."""
        dag = adder8_dag
        rng = np.random.default_rng(32)
        delay = rng.uniform(0.5, 4.0, size=dag.n)
        timer = GraphTimer(dag)
        inc = IncrementalTimer(dag, delay)
        for size in [1, 2, SCALAR_SEED_LIMIT, SCALAR_SEED_LIMIT + 1, dag.n]:
            changed = rng.choice(dag.n, size=min(size, dag.n), replace=False)
            delay = delay.copy()
            delay[changed] = rng.uniform(0.2, 6.0, size=len(changed))
            inc.update_delays(changed.tolist(), delay)
            assert_matches_full(inc, timer, delay)

    def test_arbitrary_horizon_slack(self, adder8_dag):
        """RT is horizon-free: any horizon is served without updates."""
        dag = adder8_dag
        rng = np.random.default_rng(33)
        delay = rng.uniform(0.5, 4.0, size=dag.n)
        inc = IncrementalTimer(dag, delay)
        timer = GraphTimer(dag)
        cp = inc.critical_path_delay
        for horizon in [cp, 1.3 * cp, 2.0 * cp]:
            assert_matches_full(inc, timer, delay, horizon=horizon)

    def test_report_equivalent_to_analysis(self, adder8_dag):
        dag = adder8_dag
        rng = np.random.default_rng(34)
        delay = rng.uniform(0.5, 4.0, size=dag.n)
        inc = IncrementalTimer(dag, delay)
        report = inc.report()
        full = GraphTimer(dag).analyze(delay)
        assert report.horizon == full.horizon
        assert report.critical_vertex == full.critical_vertex
        assert report.critical_path() == full.critical_path()
        assert report.is_safe() == full.is_safe()

    def test_update_stats_cone(self, adder8_dag):
        """A single-vertex change touches a cone, not the circuit."""
        dag = adder8_dag
        delay = np.full(dag.n, 2.0)
        inc = IncrementalTimer(dag, delay)
        inc.required_times()  # flush so the next update is isolated
        source = dag.sources[0]
        delay = delay.copy()
        delay[source] = 2.5
        stats = inc.update_delays([source], delay)
        assert 0 < stats.at_repropagated
        assert stats.cone_fraction < 1.0
        # the lazy backward wave runs on the next RT query and lands
        # in the cumulative counters
        before = inc.total_repropagated
        inc.required_times()
        assert inc.total_repropagated >= before


class TestTilosEngines:
    @pytest.mark.parametrize("circuit_fixture", ["c17_gate_dag", "adder8_dag"])
    def test_engines_identical(self, request, circuit_fixture):
        dag = request.getfixturevalue(circuit_fixture)
        d_min = analyze(dag, dag.min_sizes()).critical_path_delay
        target = 0.55 * d_min
        full = tilos_size(dag, target, TilosOptions(engine="full"))
        fast = tilos_size(dag, target, TilosOptions(engine="incremental"))
        assert full.feasible == fast.feasible
        assert fast.iterations == full.iterations
        assert fast.x == pytest.approx(full.x)
        assert fast.area == pytest.approx(full.area)

    def test_transistor_mode_engines_identical(self, c17_transistor_dag):
        dag = c17_transistor_dag
        d_min = analyze(dag, dag.min_sizes()).critical_path_delay
        target = 0.6 * d_min
        full = tilos_size(dag, target, TilosOptions(engine="full"))
        fast = tilos_size(dag, target, TilosOptions(engine="incremental"))
        assert fast.x == pytest.approx(full.x)

    def test_engine_validation(self):
        from repro.errors import SizingError

        with pytest.raises(SizingError, match="engine"):
            TilosOptions(engine="warp")
