"""Tests for the fleet-shaped service tier: durable work queue,
admission control, the v2 wire envelope, and multi-replica serving."""

import http.client
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.runner import Job, execute_job
from repro.runner.executor import _EXECUTORS, JobOutcome
from repro.service import ServiceClient, SizingService, make_server
from repro.service.admission import AdmissionController, TokenBucket
from repro.service.queue import MAX_ATTEMPTS, WorkQueue
from repro.service.server import WIRE_SCHEMA
from repro.sizing.serialize import canonical_json

JOB = Job(circuit="c17", delay_spec=0.6)


def _outcome(job, status="ok", payload=None, error=None):
    return JobOutcome(
        index=0, job=job, key=None, status=status, cached=False,
        wall_seconds=0.01, payload=payload, error=error,
    )


class TestWorkQueue:
    def test_enqueue_lease_finish_roundtrip(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.db")
        record = queue.create(JOB, key="k1", client="alice")
        assert record.status == "queued" and record.id == "j000001"
        assert queue.depth() == 1

        leased = queue.lease("worker-a")
        assert leased.id == record.id and leased.status == "running"
        assert queue.depth() == 1  # running still counts against depth

        done = queue.finish(record.id, _outcome(JOB, payload={"n": 1}))
        assert done.status == "ok" and done.payload == {"n": 1}
        assert queue.depth() == 0
        assert queue.counts() == {"ok": 1}
        # The payload is durable in the row: a fresh connection (another
        # replica) reads it back without any cache.
        other = WorkQueue(tmp_path / "q.db")
        assert other.get(record.id).payload == {"n": 1}

    def test_lease_is_exclusive_and_ordered(self, tmp_path):
        queue_a = WorkQueue(tmp_path / "q.db")
        queue_b = WorkQueue(tmp_path / "q.db")
        ids = [queue_a.create(JOB, key=None).id for _ in range(3)]
        claims = [
            queue_a.lease("a"), queue_b.lease("b"), queue_a.lease("a"),
        ]
        assert [c.id for c in claims] == ids  # oldest first, no repeats
        assert queue_b.lease("b") is None  # nothing left to claim

    def test_expired_lease_is_reclaimed(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.db", visibility_timeout=0.05)
        record = queue.create(JOB, key=None)
        first = queue.lease("dead-replica")
        assert first.id == record.id
        time.sleep(0.1)
        second = WorkQueue(
            tmp_path / "q.db", visibility_timeout=0.05
        ).lease("survivor")
        assert second.id == record.id
        assert second.status == "running"

    def test_poison_job_fails_permanently(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.db", visibility_timeout=0.01)
        record = queue.create(JOB, key=None)
        for _ in range(MAX_ATTEMPTS):
            assert queue.lease("crashy").id == record.id
            time.sleep(0.03)  # lease expires; worker "died"
        assert queue.lease("crashy") is None
        final = queue.get(record.id)
        assert final.status == "failed"
        assert "permanently" in final.error

    def test_wait_sees_cross_connection_finish(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.db")
        record = queue.create(JOB, key=None)

        def _finish_later():
            time.sleep(0.1)
            WorkQueue(tmp_path / "q.db").finish(record.id, _outcome(JOB))

        threading.Thread(target=_finish_later, daemon=True).start()
        seen = queue.wait(record.id, "queued", timeout=5.0)
        assert seen.status == "ok"

    def test_list_paginates_with_cursor(self, tmp_path):
        queue = WorkQueue(tmp_path / "q.db")
        ids = [queue.create(JOB, key=None).id for _ in range(5)]
        queue.finish(ids[0], _outcome(JOB))

        page, cursor = queue.list(limit=2)
        assert [r.id for r in page] == ids[:2] and cursor == ids[1]
        rest, end = queue.list(limit=10, after=cursor)
        assert [r.id for r in rest] == ids[2:] and end is None
        only_ok, _ = queue.list(status="ok")
        assert [r.id for r in only_ok] == [ids[0]]
        with pytest.raises(ServiceError) as err:
            queue.list(after="j999999")
        assert err.value.status == 400


class TestAdmission:
    def test_token_bucket_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=lambda: now[0])
        assert bucket.consume() == 0.0
        assert bucket.consume() == 0.0
        wait = bucket.consume()
        assert wait == pytest.approx(1.0)
        now[0] += wait
        assert bucket.consume() == 0.0

    def test_depth_bound_rejects_with_drain_estimate(self):
        control = AdmissionController(max_queue_depth=3)
        control.observe_drain(4.0)
        control.admit("alice", depth=2)  # under the bound: fine
        with pytest.raises(ServiceError) as err:
            control.admit("alice", depth=3)
        assert err.value.status == 429
        assert err.value.retry_after == pytest.approx(4.0)
        assert control.counters()["rejected_depth"] == 1

    def test_quota_is_per_client(self):
        control = AdmissionController(quota_rate=0.001, quota_burst=1.0)
        control.admit("alice", depth=0)
        with pytest.raises(ServiceError) as err:
            control.admit("alice", depth=0)
        assert err.value.status == 429 and err.value.retry_after > 0
        control.admit("bob", depth=0)  # a different client is unaffected
        assert control.counters()["rejected_quota"] == 1


class TestWireEnvelope:
    @pytest.fixture()
    def live(self, tmp_path):
        service = SizingService(
            jobs=1, cache=tmp_path / "cache", run_dir=tmp_path / "run",
            quota_rate=0.001, quota_burst=2.0,
        )
        server = make_server(service, quiet=True)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        yield server
        server.shutdown()
        server.server_close()
        service.close()

    def _raw(self, server, method, path, body=None):
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            payload = json.dumps(body).encode() if body else None
            conn.request(method, path, body=payload,
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            return resp.status, dict(resp.getheaders()), json.loads(
                resp.read()
            )
        finally:
            conn.close()

    def test_success_envelope_with_compat_shim(self, live):
        status, _, reply = self._raw(live, "GET", "/v1/healthz")
        assert status == 200
        assert reply["schema"] == WIRE_SCHEMA == "repro.service/2"
        assert reply["data"]["status"] == "ok"
        # The one-release /1 shim: data fields mirrored at top level.
        assert reply["status"] == reply["data"]["status"]
        assert reply["workers"] == reply["data"]["workers"]

    def test_every_v1_endpoint_wears_the_envelope(self, live):
        for path in ("/v1/healthz", "/v1/circuits", "/v1/backends",
                     "/v1/stats", "/v1/jobs"):
            status, _, reply = self._raw(live, "GET", path)
            assert status == 200, path
            assert reply["schema"] == WIRE_SCHEMA, path
            assert isinstance(reply["data"], dict), path
        status, _, reply = self._raw(
            live, "POST", "/v1/size",
            {"circuit": "c17", "delay_spec": 0.6},
        )
        assert status == 200
        assert reply["data"]["status"] == "ok"
        assert reply["status"] == "ok"  # shim

    def test_error_envelope_is_structured(self, live):
        status, _, reply = self._raw(live, "GET", "/v1/jobs/j999999")
        assert status == 404
        assert reply["schema"] == WIRE_SCHEMA
        assert reply["error"]["status"] == 404
        assert "data" not in reply

    def test_429_carries_retry_after_and_depth_headers(self, live):
        body = {"circuit": "c17", "delay_spec": 0.61, "async": True}
        # Exhaust the 2-token burst (quota_rate is ~zero refill); every
        # request must still get a structured answer, never a hang.
        replies = [
            self._raw(live, "POST", "/v1/size",
                      dict(body, delay_spec=0.61 + i / 100))
            for i in range(4)
        ]
        rejected = [r for r in replies if r[0] == 429]
        assert rejected, "flood past the burst must produce 429s"
        for status, headers, reply in rejected:
            assert reply["error"]["status"] == 429
            assert reply["error"]["retry_after"] > 0
            assert int(headers["Retry-After"]) >= 1
            assert int(headers["X-Repro-Queue-Depth"]) >= 0

    def test_client_retries_429_honoring_retry_after(self, live):
        host, port = live.server_address[:2]
        # quota_rate≈0 means Retry-After is huge; retries=0 must surface
        # the 429 as-is for callers that do their own pacing.
        with ServiceClient(
            f"http://{host}:{port}", client_id="greedy", retries=0,
        ) as client:
            seen = []
            for i in range(4):
                try:
                    client.submit(circuit="c17", delay_spec=0.71 + i / 100)
                    seen.append("ok")
                except ServiceError as exc:
                    assert exc.status == 429
                    assert exc.retry_after and exc.retry_after > 0
                    seen.append("429")
            assert "429" in seen


class TestQueueModeService:
    """One in-process replica in queue mode (drain threads active)."""

    @pytest.fixture()
    def box(self, tmp_path):
        service = SizingService(
            jobs=1, cache=tmp_path / "cache", run_dir=tmp_path / "run",
            queue=tmp_path / "q.db",
        )
        server = make_server(service, quiet=True)
        host, port = server.server_address[:2]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = ServiceClient(f"http://{host}:{port}")
        yield service, client
        server.shutdown()
        server.server_close()
        service.close()

    def test_sync_request_round_trips_through_the_queue(self, box):
        service, client = box
        reply = client.size(circuit="c17", delay_spec=0.6)
        assert reply["status"] == "ok"
        _, payload = execute_job(JOB)
        assert reply["payload"]["result"]["x"] == payload["result"]["x"]
        stats = client.stats()
        assert stats["queue"]["mode"] == "queue"
        assert stats["queue"]["depth"] == 0

    def test_async_job_is_drained_by_the_worker(self, box):
        _, client = box
        ticket = client.submit(circuit="c17", delay_spec=0.8)
        done = client.wait(ticket["id"], timeout=60)
        assert done["status"] == "ok"
        assert done["payload"]["result"]["area"] > 0

    def test_events_stream_ends_on_terminal_snapshot(self, box):
        _, client = box
        ticket = client.submit(circuit="c17", delay_spec=0.9)
        statuses = [e["status"] for e in client.events(ticket["id"],
                                                       timeout=30)]
        assert statuses, "stream must yield at least one snapshot"
        assert statuses[-1] in ("ok", "infeasible", "failed", "timeout")
        with pytest.raises(ServiceError) as err:
            list(client.events("j999999"))
        assert err.value.status == 404

    def test_sync_wait_deadline_degrades_to_202(self, tmp_path,
                                                monkeypatch):
        release = threading.Event()
        original = _EXECUTORS["sizing"]

        def stall(job):
            release.wait(30)
            return original(job)

        monkeypatch.setitem(_EXECUTORS, "sizing", stall)
        service = SizingService(
            jobs=1, cache=None, run_dir=tmp_path / "run",
            queue=tmp_path / "q.db", sync_wait=0.2,
        )
        server = make_server(service, quiet=True)
        host, port = server.server_address[:2]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            with ServiceClient(f"http://{host}:{port}") as client:
                data, status = client._request(
                    "POST", "/v1/size",
                    {"circuit": "c17", "delay_spec": 0.6},
                )
                assert status == 202
                assert data["status"] in ("queued", "running")
                release.set()
                done = client.wait(data["id"], timeout=60)
                assert done["status"] == "ok"
        finally:
            release.set()
            server.shutdown()
            server.server_close()
            service.close()


class TestTwoReplicas:
    """Two in-process services sharing one queue + one sqlite cache."""

    @pytest.fixture()
    def fleet(self, tmp_path):
        boxes = []
        for name in ("a", "b"):
            service = SizingService(
                jobs=1,
                cache=f"sqlite:{tmp_path / 'cache.db'}",
                run_dir=tmp_path / f"run-{name}",
                queue=tmp_path / "q.db",
            )
            server = make_server(service, quiet=True)
            host, port = server.server_address[:2]
            threading.Thread(
                target=server.serve_forever, daemon=True
            ).start()
            boxes.append(
                (service, server, ServiceClient(f"http://{host}:{port}"))
            )
        yield boxes
        for service, server, _ in boxes:
            server.shutdown()
            server.server_close()
            service.close()

    def test_any_replica_answers_for_any_job(self, fleet):
        (_, _, client_a), (_, _, client_b) = fleet
        reply = client_a.size(circuit="c17", delay_spec=0.6)
        assert reply["status"] == "ok"
        # The other replica serves the same job id from the shared row.
        seen_from_b = client_b.job(reply["id"])
        assert seen_from_b["status"] == "ok"
        assert seen_from_b["summary"] == reply["summary"]

    def test_cross_replica_cache_hit_is_byte_identical(self, fleet):
        (_, _, client_a), (_, _, client_b) = fleet
        first = client_a.size(circuit="c17", delay_spec=0.7)
        assert not first["cached"]
        second = client_b.size(circuit="c17", delay_spec=0.7)
        assert second["cached"]
        assert canonical_json(second["payload"]) == canonical_json(
            first["payload"]
        )


@pytest.mark.slow
class TestMultiProcessServe:
    """The acceptance scenario: two real ``python -m repro serve``
    processes on one shared backend + queue."""

    @pytest.fixture()
    def fleet(self, tmp_path):
        procs, clients = [], []
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src"),
            PYTHONUNBUFFERED="1",
        )
        try:
            for name in ("a", "b"):
                proc = subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "serve",
                        "--port", "0", "--jobs", "1",
                        "--queue", str(tmp_path / "q.db"),
                        "--cache-backend",
                        f"sqlite:{tmp_path / 'cache.db'}",
                        "--run-dir", str(tmp_path / f"run-{name}"),
                        "--quota", "0.001", "--quota-burst", "3",
                    ],
                    env=env, stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT, text=True,
                )
                procs.append(proc)
                deadline = time.monotonic() + 60
                while True:
                    line = proc.stdout.readline()
                    if "listening on http://" in line:
                        url = line.split("listening on ")[1].split()[0]
                        break
                    if time.monotonic() > deadline or not line:
                        raise AssertionError(
                            f"serve replica {name} never came up"
                        )
                clients.append(ServiceClient(url, client_id=f"tester-{name}",
                                             retries=0))
            yield clients
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.wait(timeout=30)

    def test_fleet_parity_cross_hit_and_backpressure(self, fleet):
        client_a, client_b = fleet

        # 1. A result computed by replica A matches the single-process
        #    execution path on every deterministic field (timings in
        #    the payload are wall-clock noise by design).
        reply = client_a.size(circuit="c17", delay_spec=0.6)
        assert reply["status"] == "ok" and not reply["cached"]
        _, payload = execute_job(JOB)
        for field in ("x", "area", "critical_path_delay", "converged"):
            assert reply["payload"]["result"][field] == (
                payload["result"][field]
            ), field

        # 2. Replica B serves the identical request as a cache hit from
        #    the shared backend — byte-identical payload.
        again = client_b.size(circuit="c17", delay_spec=0.6)
        assert again["cached"]
        assert canonical_json(again["payload"]) == canonical_json(
            reply["payload"]
        )

        # 3. Replica B answers for the job replica A executed.
        assert client_b.job(reply["id"])["status"] == "ok"

        # 4. Flood one client past its admission burst: every request
        #    is answered — a ticket or a structured 429 — never a hang.
        outcomes = {"admitted": 0, "rejected": 0}
        for i in range(8):
            try:
                client_b.submit(circuit="c17", delay_spec=0.61 + i / 100)
                outcomes["admitted"] += 1
            except ServiceError as exc:
                assert exc.status == 429
                assert exc.retry_after and exc.retry_after > 0
                outcomes["rejected"] += 1
        assert outcomes["rejected"] >= 1
        assert outcomes["admitted"] + outcomes["rejected"] == 8


def _fleet_spans(tmp_path, trace_id=None, expect=frozenset(), timeout=5.0):
    """Every span record from both replicas' trace.jsonl files.

    The server writes its ``http.request`` span *after* the response
    bytes reach the client, so when ``expect`` names are given, poll
    briefly until they all appear under ``trace_id``.
    """
    deadline = time.monotonic() + timeout
    while True:
        spans = []
        for name in ("a", "b"):
            path = tmp_path / f"run-{name}" / "trace.jsonl"
            if path.is_file():
                spans.extend(
                    json.loads(line)
                    for line in path.read_text().splitlines() if line
                )
        if trace_id is not None:
            spans = [s for s in spans if s["trace"] == trace_id]
        if expect <= {s["name"] for s in spans}:
            return spans
        if time.monotonic() > deadline:
            return spans
        time.sleep(0.05)


_EXPOSITION_LINE = (
    r"[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'  # first label
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" [0-9+.eE-]+(Inf)?$"                # value
)


def _parse_exposition(text):
    """Validate Prometheus text exposition; return ``{series: value}``."""
    import re

    series = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE ")), line
            continue
        assert re.fullmatch(_EXPOSITION_LINE, line), line
        name, _, value = line.rpartition(" ")
        series[name] = float(value)
    return series


@pytest.mark.slow
class TestFleetObservability:
    """The tentpole acceptance path: one trace id across two replicas,
    and /v1/metrics as an exact view over the run."""

    @pytest.fixture()
    def fleet(self, tmp_path):
        boxes = []
        for name in ("a", "b"):
            service = SizingService(
                jobs=1,
                cache=f"sqlite:{tmp_path / 'cache.db'}",
                run_dir=tmp_path / f"run-{name}",
                queue=tmp_path / "q.db",
            )
            server = make_server(service, quiet=True)
            host, port = server.server_address[:2]
            threading.Thread(
                target=server.serve_forever, daemon=True
            ).start()
            boxes.append(
                (service, server, ServiceClient(f"http://{host}:{port}"))
            )
        yield boxes
        for service, server, _ in boxes:
            server.shutdown()
            server.server_close()
            service.close()

    def test_one_trace_id_covers_the_whole_queue_lifecycle(
        self, fleet, tmp_path,
    ):
        (_, _, client_a), _ = fleet
        tid = "feedc0de00000001"
        client_a.trace_id = tid
        reply = client_a.size(circuit="c17", delay_spec=0.6)
        assert reply["status"] == "ok"
        assert reply["trace_id"] == tid

        # HTTP handling, admission, queue wait, cache probe, execution
        # and every solver phase — one trace id end to end.
        expected = {
            "http.request", "service.admit", "queue.wait", "cache.probe",
            "job", "job.execute", "minflo.d_phase", "minflo.w_phase",
        }
        spans = _fleet_spans(tmp_path, trace_id=tid, expect=expected)
        names = {s["name"] for s in spans}
        assert expected <= names, names

        by_id = {s["id"]: s for s in spans}
        roots = [s for s in spans if s["name"] == "job"]
        assert len(roots) == 1
        root = roots[0]
        assert root["parent"] is None
        children = [s for s in spans if s["parent"] == root["id"]]
        child_names = {s["name"] for s in children}
        assert {"queue.wait", "job.execute"} <= child_names
        # Children never account for more time than their parent span
        # (small epsilon: the root mixes wall-clock ends observed on
        # one host with monotonic child durations).
        assert sum(s["duration_s"] for s in children) <= (
            root["duration_s"] + 0.05
        )
        # Solver-phase spans re-parent correctly through the pool
        # boundary: every span's parent exists in the same trace (or is
        # the root itself).
        for s in spans:
            if s["parent"] is not None and s["name"] != "http.request":
                assert s["parent"] in by_id, s

    def test_trace_cli_renders_the_fleet_trace(self, fleet, tmp_path):
        (_, _, client_a), _ = fleet
        tid = "feedc0de00000002"
        client_a.trace_id = tid
        assert client_a.size(circuit="c17", delay_spec=0.62)["status"] == "ok"
        files = [
            str(tmp_path / f"run-{n}" / "trace.jsonl") for n in ("a", "b")
            if (tmp_path / f"run-{n}" / "trace.jsonl").is_file()
        ]
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src"),
        )
        out = subprocess.run(
            [sys.executable, "-m", "repro", "trace", tid]
            + [arg for f in files for arg in ("--file", f)],
            env=env, capture_output=True, text=True,
        )
        assert out.returncode == 0, out.stderr
        assert tid in out.stdout
        assert "job.execute" in out.stdout
        assert "critical path:" in out.stdout

    def test_metrics_exposition_matches_the_run_exactly(self, fleet):
        (service_a, _, client_a), (service_b, _, client_b) = fleet
        first = client_a.size(circuit="c17", delay_spec=0.64)
        assert first["status"] == "ok" and not first["cached"]
        second = client_b.size(circuit="c17", delay_spec=0.64)
        assert second["cached"]

        # Scrape both replicas; counters are per-replica, the run's
        # totals are their sum.
        text_a, text_b = client_a.metrics(), client_b.metrics()
        series_a = _parse_exposition(text_a)
        series_b = _parse_exposition(text_b)
        stats_a, stats_b = client_a.stats(), client_b.stats()

        for series, stats in (
            (series_a, stats_a), (series_b, stats_b),
        ):
            assert series.get("repro_cache_hits_total", 0.0) == (
                stats["cache_hits"]
            )
            assert series.get("repro_jobs_executed_total", 0.0) == (
                stats["executed"]
            )
            assert series["repro_queue_depth"] == stats["queue"]["depth"]
        # Exactly one execution and one replayed hit across the fleet.
        executed = sum(
            s.get("repro_jobs_executed_total", 0.0)
            for s in (series_a, series_b)
        )
        hits = sum(
            s.get("repro_cache_hits_total", 0.0)
            for s in (series_a, series_b)
        )
        assert executed == 1.0
        assert hits == 1.0
        # The drain-side phase counters account the worker's time.
        executor = service_a if series_a.get(
            "repro_jobs_executed_total", 0.0
        ) else service_b
        exec_text = executor.metrics_text()
        assert 'repro_phase_seconds_total{phase="minflo.d_phase"}' in (
            exec_text
        )
        # Cache-backend probes land in the process-global registry and
        # ride along in the same exposition.
        assert "repro_cache_probe_total" in exec_text

    def test_stats_stays_consistent_under_concurrent_drains(self, fleet):
        """Hammer /v1/stats and /v1/metrics while both replicas drain:
        no torn counters, and the final totals add up exactly."""
        (service_a, _, client_a), (service_b, _, client_b) = fleet
        stop = threading.Event()
        failures = []

        def hammer():
            while not stop.is_set():
                try:
                    for service in (service_a, service_b):
                        stats = service.stats()
                        assert stats["executed"] >= 0
                        _parse_exposition(service.metrics_text())
                except Exception as exc:  # noqa: BLE001
                    failures.append(exc)
                    return

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        tickets = [
            client_a.submit(circuit="rca:4", delay_spec=1.2 + i / 50)
            for i in range(4)
        ]
        for ticket in tickets:
            client_b.wait(ticket["id"], timeout=120.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not failures, failures[0]
        executed = (
            service_a.stats()["executed"] + service_b.stats()["executed"]
        )
        hits = (
            service_a.stats()["cache_hits"]
            + service_b.stats()["cache_hits"]
        )
        assert executed + hits == len(tickets)
