"""Tests for the runtime-scaling study harness."""

import pytest

from repro.experiments.scaling import (
    fit_slopes,
    format_scaling,
    run_scaling,
)


class TestScalingStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return run_scaling(widths=[4, 8, 16])

    def test_points_cover_widths(self, points):
        assert [p.width for p in points] == [4, 8, 16]
        sizes = [p.n_vertices for p in points]
        assert sizes == sorted(sizes)

    def test_positive_timings(self, points):
        for p in points:
            assert p.sta_seconds > 0
            assert p.balance_seconds > 0
            assert p.w_phase_seconds > 0
            assert p.d_phase_seconds > 0

    def test_slopes_fit(self, points):
        slopes = fit_slopes(points)
        assert set(slopes) == {"sta", "balance", "w_phase", "d_phase"}
        # Sub-quadratic growth for every phase (the paper claims near
        # linear; tiny instances carry constant overhead, so allow a
        # loose upper bound here — the benchmark suite measures the
        # real trend on big circuits).
        for phase, slope in slopes.items():
            assert slope < 2.5, (phase, slope)

    def test_format(self, points):
        text = format_scaling(points)
        assert "fitted growth" in text
        assert "|V|" in text
