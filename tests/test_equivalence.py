"""Tests for the equivalence checker."""

import pytest

from repro.circuit import CircuitBuilder, map_to_primitives
from repro.circuit.equivalence import check_equivalence
from repro.errors import NetlistError


def _xor_pair():
    builder = CircuitBuilder("m")
    a, b = builder.inputs(["a", "b"])
    builder.output(builder.xor(a, b), name="y")
    macro = builder.build()
    return macro, map_to_primitives(macro, suffix="")


class TestEquivalence:
    def test_mapped_xor_equivalent_exhaustively(self):
        macro, mapped = _xor_pair()
        result = check_equivalence(macro, mapped)
        assert result
        assert result.exhaustive
        assert result.vectors_checked == 4

    def test_detects_inequivalence(self):
        builder = CircuitBuilder("x")
        a, b = builder.inputs(["a", "b"])
        builder.output(builder.xor(a, b), name="y")
        xor_circuit = builder.build()
        builder2 = CircuitBuilder("o")
        a, b = builder2.inputs(["a", "b"])
        builder2.output(builder2.or_(a, b), name="y")
        or_circuit = builder2.build()
        result = check_equivalence(xor_circuit, or_circuit)
        assert not result
        assert result.failing_output == "y"
        # The counterexample really distinguishes them.
        ce = result.counterexample
        assert xor_circuit.evaluate(ce)["y"] != or_circuit.evaluate(ce)["y"]

    def test_interface_mismatch(self, c17):
        builder = CircuitBuilder("t")
        a = builder.input("a")
        builder.output(builder.not_(a))
        with pytest.raises(NetlistError, match="inputs"):
            check_equivalence(c17, builder.build())

    def test_random_mode_on_wide_inputs(self):
        builder = CircuitBuilder("wide")
        nets = builder.inputs([f"i{k}" for k in range(24)])
        builder.output(builder.and_(*nets), name="y")
        wide = builder.build()
        mapped = map_to_primitives(wide, suffix="")
        result = check_equivalence(wide, mapped, n_vectors=32)
        assert result
        assert not result.exhaustive
        assert result.vectors_checked == 32
